// Scalar building blocks for the hot-path kernels: a polynomial log2/exp2
// pair accurate to a few 1e-16 relative (used by the float-payload log
// transform, stream-format log-kernel version 1), and an inline exact
// replacement for std::llround over the quantizer's domain.
//
// Everything here is branch-free (or select-based) double arithmetic plus
// integer bit manipulation, so the batch loops built on top of it
// auto-vectorize under the baseline SSE2 target and wider under
// TRANSPWR_NATIVE. No libm calls, no FP-environment dependence beyond the
// default round-to-nearest-even mode; with contraction disabled build-wide
// (-ffp-contract=off) results are bit-identical across compilers, ISAs and
// unrolling choices.
#ifndef TRANSPWR_KERNELS_FASTMATH_H_
#define TRANSPWR_KERNELS_FASTMATH_H_

#include <bit>
#include <cstdint>

namespace transpwr {
namespace kernels {

// Accuracy contract (see docs/tuning.md "Kernel layer"): both functions stay
// within ~4e-16 *relative* error — relative to the result for fast_log2
// (the sqrt(2) split keeps the reduced exponent 0 near x = 1, so there is
// no cancellation against the polynomial term), relative to the true 2^v
// for fast_exp2. The Lemma 2 guard (max|log| * eps0_float) and bound shrink
// (8 * eps0_float) in the float transform budget ~6e-8 and ~9.5e-7 for
// these errors respectively, so the kernels sit three decades inside it.
// Double payloads keep the libm LogKernel: their eps0 is 2^-52 and a
// polynomial of this degree cannot undercut a correctly-rounded libm.

// log2(x) for finite positive x (subnormals included). Exact on powers of
// two and at x = 1. Garbage-in-garbage-out (but well-defined) for
// non-positive / non-finite inputs; the forward transform feeds |x| or a
// dummy 1.0 and rejects non-finite fields after the pass.
inline double fast_log2(double x) {
  constexpr std::uint64_t kMantMask = 0x000fffffffffffffULL;
  constexpr std::uint64_t kOneBits = 0x3ff0000000000000ULL;
  constexpr double kSqrt2 = 0x1.6a09e667f3bcdp+0;  // nearest double to sqrt 2

  std::uint64_t bits = std::bit_cast<std::uint64_t>(x);
  // Subnormals: renormalize with an exact 2^64 scale so the exponent field
  // is usable. Select-based so the loop stays vectorizable.
  const bool subnormal = (bits & 0x7ff0000000000000ULL) == 0;
  const double xn = subnormal ? x * 0x1p64 : x;
  bits = std::bit_cast<std::uint64_t>(xn);
  std::int64_t e = static_cast<std::int64_t>(bits >> 52) - 1023 -
                   (subnormal ? 64 : 0);
  double m = std::bit_cast<double>((bits & kMantMask) | kOneBits);
  // Reduce m into [sqrt2/2, sqrt2): e != 0 then implies |log2 x| >= 0.5, so
  // adding the exponent never cancels the polynomial term and the result
  // stays accurate relative to its own magnitude all the way into x -> 1.
  const bool high = m >= kSqrt2;
  m = high ? m * 0.5 : m;
  e += high ? 1 : 0;

  // log2(m) = (2/ln2) * atanh(s) with s = (m-1)/(m+1), |s| <= 0.1716.
  // Ten odd terms put the series truncation near 2e-17 relative.
  const double s = (m - 1.0) / (m + 1.0);
  const double u = s * s;
  double p = 1.0 / 19.0;
  p = p * u + 1.0 / 17.0;
  p = p * u + 1.0 / 15.0;
  p = p * u + 1.0 / 13.0;
  p = p * u + 1.0 / 11.0;
  p = p * u + 1.0 / 9.0;
  p = p * u + 1.0 / 7.0;
  p = p * u + 1.0 / 5.0;
  p = p * u + 1.0 / 3.0;
  p = p * u + 1.0;
  constexpr double kTwoOverLn2 = 0x1.71547652b82fep+1;
  return static_cast<double>(e) + s * kTwoOverLn2 * p;
}

// 2^v for any double: NaN propagates, +/-inf and out-of-range magnitudes
// saturate to +inf / 0 through the final scaling, subnormal results come
// out via gradual underflow. Exact for integer v. Defined for arbitrary
// input because the inverse transform runs it on attacker-controlled
// (corrupt-stream) payloads.
inline double fast_exp2(double v) {
  const bool nan_in = v != v;
  double vc = nan_in ? 0.0 : v;
  // Clamp so the integer split below never casts an out-of-range double
  // (UB). 2^-1075 underflows to 0 and 2^1025 overflows to inf anyway, so
  // saturation preserves the limit values.
  vc = vc < -1075.0 ? -1075.0 : vc;
  vc = vc > 1025.0 ? 1025.0 : vc;

  // Round-to-nearest-even integer split via the 1.5*2^52 shifter (exact for
  // |vc| < 2^51, SSE2-friendly: no nearbyint libm call). f = vc - n is
  // exact: either n == 0, or vc and n are within a factor of two
  // (Sterbenz).
  constexpr double kShifter = 0x1.8p52;
  const double nd = (vc + kShifter) - kShifter;
  const std::int64_t n = static_cast<std::int64_t>(nd);
  const double f = vc - nd;  // in [-0.5, 0.5]

  // 2^f = e^{f ln2}: degree-12 Taylor, truncation ~2.4e-16 relative at the
  // |f| = 0.5 edge.
  constexpr double kLn2 = 0x1.62e42fefa39efp-1;
  const double t = f * kLn2;
  double p = 1.0 / 479001600.0;
  p = p * t + 1.0 / 39916800.0;
  p = p * t + 1.0 / 3628800.0;
  p = p * t + 1.0 / 362880.0;
  p = p * t + 1.0 / 40320.0;
  p = p * t + 1.0 / 5040.0;
  p = p * t + 1.0 / 720.0;
  p = p * t + 1.0 / 120.0;
  p = p * t + 1.0 / 24.0;
  p = p * t + 1.0 / 6.0;
  p = p * t + 1.0 / 2.0;
  p = p * t + 1.0;
  p = p * t + 1.0;

  // Scale by 2^n in two exact half-exponent factors so every n in
  // [-1075, 1025] stays inside the normal exponent range of each factor;
  // the final product handles gradual underflow / overflow in hardware.
  const std::int64_t n1 = n >> 1;  // floor halves: n1 + n2 == n
  const std::int64_t n2 = n - n1;
  const double s1 = std::bit_cast<double>(
      static_cast<std::uint64_t>(n1 + 1023) << 52);
  const double s2 = std::bit_cast<double>(
      static_cast<std::uint64_t>(n2 + 1023) << 52);
  const double r = (p * s1) * s2;
  return nan_in ? v : r;
}

// Exactly std::llround(x) — round to nearest, ties away from zero — for
// |x| < 2^52, without the libm call that dominates the quantizer's
// dependency chain. The decomposition x = i + frac is exact: (double)i is
// exact below 2^52 and the subtraction is Sterbenz (or i == 0).
inline std::int64_t llround_exact(double x) {
  const std::int64_t i = static_cast<std::int64_t>(x);  // trunc toward zero
  const double frac = x - static_cast<double>(i);
  return i + (frac >= 0.5 ? 1 : 0) - (frac <= -0.5 ? 1 : 0);
}

}  // namespace kernels
}  // namespace transpwr

#endif  // TRANSPWR_KERNELS_FASTMATH_H_

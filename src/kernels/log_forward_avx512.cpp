// AVX-512 body of log_forward_f32_block: 8-wide evaluation of the exact
// fast_log2 expression plus the fused classification (sign / zero / finite
// masks, max |log|) over full 64-element bitmap words.
//
// Bit-identity with the scalar path is by construction: every operation is
// a per-lane IEEE-754 double op (add/sub/mul/div/cvt) in the same order as
// fast_log2, integer selects become mask blends/merges of the same
// operands, and the exponent comes from VCVTQQ2PD (AVX512DQ) — the same
// int64 -> double convert the scalar code performs. The e + 1 of the
// sqrt(2) fold and the bias subtraction run in the double domain, where
// every operand is an exact small integer, so the sums equal the scalar
// integer arithmetic exactly. No FMA instructions are emitted: only
// explicit mul/add intrinsics are used and the build pins -ffp-contract=off.
//
// The function is only called after a runtime __builtin_cpu_supports
// check in log_batch.cpp; this TU is compiled with the baseline flags and
// the AVX-512 code generation is scoped to the one function attribute
// below.
#include <cstddef>
#include <cstdint>

#include <immintrin.h>

#include "kernels/log_batch.h"

// GCC's AVX-512 intrinsic headers route through _mm512_undefined_*, which
// trips -Wmaybe-uninitialized at -O3 (GCC PR105593); not a real read.
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"

namespace transpwr {
namespace kernels {
namespace detail {

__attribute__((target("avx512f,avx512dq"))) void log_forward_f32_words_avx512(
    const float* in, float* mapped, std::size_t nwords, double scale,
    std::uint64_t* sign_words, std::uint64_t* zero_words, double* max_abs_log,
    LogFwdFlags* flags) {
  const __m512d kZero = _mm512_setzero_pd();
  const __m512d kOne = _mm512_set1_pd(1.0);
  const __m512d kHalf = _mm512_set1_pd(0.5);
  const __m512d kAbsMask =
      _mm512_castsi512_pd(_mm512_set1_epi64(0x7fffffffffffffffLL));
  const __m512d kInf =
      _mm512_castsi512_pd(_mm512_set1_epi64(0x7ff0000000000000LL));
  const __m512d kTwo64 = _mm512_set1_pd(0x1p64);
  const __m512d kSqrt2 = _mm512_set1_pd(0x1.6a09e667f3bcdp+0);
  const __m512d kTwoOverLn2 = _mm512_set1_pd(0x1.71547652b82fep+1);
  const __m512d kScale = _mm512_set1_pd(scale);
  const __m512i kMantMask = _mm512_set1_epi64(0x000fffffffffffffLL);
  const __m512i kOneBits = _mm512_set1_epi64(0x3ff0000000000000LL);
  // Exponent bias: 1023 (normal) / 1087 (renormalized subnormal, extra 64).
  const __m512d kBiasN = _mm512_set1_pd(1023.0);
  const __m512d kBiasS = _mm512_set1_pd(1087.0);

  __m512d vmax = _mm512_setzero_pd();
  unsigned neg_acc = 0;
  unsigned zero_acc = 0;
  unsigned nf_acc = 0;

  for (std::size_t w = 0; w < nwords; ++w) {
    std::uint64_t sign_w = 0;
    std::uint64_t zero_w = 0;
    const float* p_in = in + w * 64;
    float* p_out = mapped + w * 64;
    for (unsigned g = 0; g < 8; ++g) {
      const __m512d v = _mm512_cvtps_pd(_mm256_loadu_ps(p_in + g * 8));
      const __m512d absv = _mm512_and_pd(v, kAbsMask);
      const __mmask8 negm = _mm512_cmp_pd_mask(v, kZero, _CMP_LT_OQ);
      const __mmask8 zerom = _mm512_cmp_pd_mask(v, kZero, _CMP_EQ_OQ);
      // !(|v| < inf) <=> !isfinite(v); unordered so NaN lands in the mask.
      nf_acc |= _mm512_cmp_pd_mask(absv, kInf, _CMP_NLT_UQ);
      neg_acc |= negm;
      zero_acc |= zerom;
      const __m512d tin = _mm512_mask_blend_pd(zerom, absv, kOne);

      // fast_log2, lane-parallel. Subnormal renorm via exact * 2^64.
      const __m512i bits = _mm512_castpd_si512(tin);
      const __mmask8 subn = _mm512_cmpeq_epi64_mask(
          _mm512_srli_epi64(bits, 52), _mm512_setzero_si512());
      const __m512d xn = _mm512_mask_mul_pd(tin, subn, tin, kTwo64);
      const __m512i b2 = _mm512_castpd_si512(xn);
      // (double)(ebits) - bias: VCVTQQ2PD of the shifted exponent field is
      // the scalar int64 convert; the bias subtraction is exact (both
      // operands are small integers).
      const __m512d ed = _mm512_sub_pd(
          _mm512_cvtepi64_pd(_mm512_srli_epi64(b2, 52)),
          _mm512_mask_blend_pd(subn, kBiasN, kBiasS));
      __m512d m = _mm512_castsi512_pd(
          _mm512_or_si512(_mm512_and_si512(b2, kMantMask), kOneBits));
      const __mmask8 high = _mm512_cmp_pd_mask(m, kSqrt2, _CMP_GE_OQ);
      m = _mm512_mask_mul_pd(m, high, m, kHalf);
      const __m512d e2 = _mm512_mask_add_pd(ed, high, ed, kOne);
      const __m512d s =
          _mm512_div_pd(_mm512_sub_pd(m, kOne), _mm512_add_pd(m, kOne));
      const __m512d u = _mm512_mul_pd(s, s);
      __m512d p = _mm512_set1_pd(1.0 / 19.0);
      p = _mm512_add_pd(_mm512_mul_pd(p, u), _mm512_set1_pd(1.0 / 17.0));
      p = _mm512_add_pd(_mm512_mul_pd(p, u), _mm512_set1_pd(1.0 / 15.0));
      p = _mm512_add_pd(_mm512_mul_pd(p, u), _mm512_set1_pd(1.0 / 13.0));
      p = _mm512_add_pd(_mm512_mul_pd(p, u), _mm512_set1_pd(1.0 / 11.0));
      p = _mm512_add_pd(_mm512_mul_pd(p, u), _mm512_set1_pd(1.0 / 9.0));
      p = _mm512_add_pd(_mm512_mul_pd(p, u), _mm512_set1_pd(1.0 / 7.0));
      p = _mm512_add_pd(_mm512_mul_pd(p, u), _mm512_set1_pd(1.0 / 5.0));
      p = _mm512_add_pd(_mm512_mul_pd(p, u), _mm512_set1_pd(1.0 / 3.0));
      p = _mm512_add_pd(_mm512_mul_pd(p, u), kOne);
      // (double)e + (s * kTwoOverLn2) * p, the scalar association.
      const __m512d res =
          _mm512_add_pd(e2, _mm512_mul_pd(_mm512_mul_pd(s, kTwoOverLn2), p));

      const __m512d lv = _mm512_mul_pd(res, kScale);
      _mm256_storeu_ps(p_out + g * 8, _mm512_cvtpd_ps(lv));
      // MAXPD(alv, vmax) returns vmax when alv is NaN and vmax is never
      // NaN, which reproduces the scalar strict-greater NaN skip.
      const __m512d alv = _mm512_and_pd(lv, kAbsMask);
      vmax = _mm512_max_pd(alv, vmax);

      const unsigned shift = g * 8;
      sign_w |= static_cast<std::uint64_t>(negm) << shift;
      zero_w |= static_cast<std::uint64_t>(zerom) << shift;
    }
    sign_words[w] = sign_w;
    zero_words[w] = zero_w;
  }

  alignas(64) double lanes[8];
  _mm512_storeu_pd(lanes, vmax);
  double mx = *max_abs_log;
  for (double m : lanes)
    if (m > mx) mx = m;
  *max_abs_log = mx;
  if (neg_acc) flags->any_negative = true;
  if (zero_acc) flags->has_zeros = true;
  if (nf_acc) flags->non_finite = true;
}

}  // namespace detail
}  // namespace kernels
}  // namespace transpwr

#include "kernels/log_batch.h"

#include <algorithm>
#include <cmath>

#include "kernels/dispatch.h"
#include "kernels/fastmath.h"

namespace transpwr {
namespace kernels {
namespace detail {

// Defined in log_forward_avx2.cpp / log_forward_avx512.cpp; call only
// after the matching cpu_supports check.
void log_forward_f32_words_avx2(const float* in, float* mapped,
                                std::size_t nwords, double scale,
                                std::uint64_t* sign_words,
                                std::uint64_t* zero_words,
                                double* max_abs_log, LogFwdFlags* flags);
void log_forward_f32_words_avx512(const float* in, float* mapped,
                                  std::size_t nwords, double scale,
                                  std::uint64_t* sign_words,
                                  std::uint64_t* zero_words,
                                  double* max_abs_log, LogFwdFlags* flags);

}  // namespace detail

namespace {

bool cpu_has_avx2() {
  static const bool has = __builtin_cpu_supports("avx2");
  return has;
}

bool cpu_has_avx512() {
  // avx512dq implies avx512f; DQ supplies VCVTQQ2PD for the exponent.
  static const bool has = __builtin_cpu_supports("avx512dq");
  return has;
}

// Scalar reference body of log_forward_f32_block; also serves the final
// partial word of the native path. `in` is 64-aligned relative to the word
// buffers (the caller slices on bitmap-word boundaries).
void log_forward_f32_generic(const float* in, float* mapped, std::size_t n,
                             double scale, std::uint64_t* sign_words,
                             std::uint64_t* zero_words, double* max_abs_log,
                             LogFwdFlags* flags) {
  double mx = *max_abs_log;
  bool neg = false, zer = false, nf = false;
  std::size_t i = 0;
  while (i < n) {
    const std::size_t word_end = std::min(n, (i & ~std::size_t{63}) + 64);
    std::uint64_t sw = 0, zw = 0;
    for (; i < word_end; ++i) {
      const double v = static_cast<double>(in[i]);
      if (!std::isfinite(v)) nf = true;
      sw |= static_cast<std::uint64_t>(v < 0) << (i & 63);
      zw |= static_cast<std::uint64_t>(v == 0) << (i & 63);
      const double tin = v == 0 ? 1.0 : std::abs(v);
      const double lv = fast_log2(tin) * scale;
      mapped[i] = static_cast<float>(lv);
      const double m = std::abs(lv);
      if (m > mx) mx = m;
    }
    sign_words[(i - 1) >> 6] = sw;
    zero_words[(i - 1) >> 6] = zw;
    neg |= sw != 0;
    zer |= zw != 0;
  }
  *max_abs_log = mx;
  if (neg) flags->any_negative = true;
  if (zer) flags->has_zeros = true;
  if (nf) flags->non_finite = true;
}

}  // namespace

void log_forward_f32_block(const float* in, float* mapped, std::size_t n,
                           double scale, std::uint64_t* sign_words,
                           std::uint64_t* zero_words, double* max_abs_log,
                           LogFwdFlags* flags) {
  std::size_t head = 0;
  if (active() == Dispatch::kNative) {
    const std::size_t nwords = n / 64;
    if (nwords && cpu_has_avx512()) {
      detail::log_forward_f32_words_avx512(in, mapped, nwords, scale,
                                           sign_words, zero_words,
                                           max_abs_log, flags);
      head = nwords * 64;
    } else if (nwords && cpu_has_avx2()) {
      detail::log_forward_f32_words_avx2(in, mapped, nwords, scale,
                                         sign_words, zero_words, max_abs_log,
                                         flags);
      head = nwords * 64;
    }
  }
  if (head < n)
    log_forward_f32_generic(in + head, mapped + head, n - head, scale,
                            sign_words + head / 64, zero_words + head / 64,
                            max_abs_log, flags);
}

namespace {

void log2_generic(const double* in, double* out, std::size_t n,
                  double scale) {
  for (std::size_t i = 0; i < n; ++i) out[i] = fast_log2(in[i]) * scale;
}

void exp2_generic(const double* in, double* out, std::size_t n,
                  double scale) {
  for (std::size_t i = 0; i < n; ++i) out[i] = fast_exp2(in[i] * scale);
}

// Native variants: 4-wide unrolled bodies with no cross-iteration state, so
// the vectorizer emits packed divides/multiplies and the scalar remainder
// peels off at the end. Same per-element expression as generic.
void log2_native(const double* in, double* out, std::size_t n, double scale) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const double a = fast_log2(in[i]);
    const double b = fast_log2(in[i + 1]);
    const double c = fast_log2(in[i + 2]);
    const double d = fast_log2(in[i + 3]);
    out[i] = a * scale;
    out[i + 1] = b * scale;
    out[i + 2] = c * scale;
    out[i + 3] = d * scale;
  }
  for (; i < n; ++i) out[i] = fast_log2(in[i]) * scale;
}

void exp2_native(const double* in, double* out, std::size_t n, double scale) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const double a = fast_exp2(in[i] * scale);
    const double b = fast_exp2(in[i + 1] * scale);
    const double c = fast_exp2(in[i + 2] * scale);
    const double d = fast_exp2(in[i + 3] * scale);
    out[i] = a;
    out[i + 1] = b;
    out[i + 2] = c;
    out[i + 3] = d;
  }
  for (; i < n; ++i) out[i] = fast_exp2(in[i] * scale);
}

}  // namespace

void log2_scaled_batch(const double* in, double* out, std::size_t n,
                       double scale) {
  if (active() == Dispatch::kNative)
    log2_native(in, out, n, scale);
  else
    log2_generic(in, out, n, scale);
}

void exp2_scaled_batch(const double* in, double* out, std::size_t n,
                       double scale) {
  if (active() == Dispatch::kNative)
    exp2_native(in, out, n, scale);
  else
    exp2_generic(in, out, n, scale);
}

}  // namespace kernels
}  // namespace transpwr

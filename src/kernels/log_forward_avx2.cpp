// AVX2 body of log_forward_f32_block: 4-wide evaluation of the exact
// fast_log2 expression plus the fused classification (sign / zero / finite
// masks, max |log|) over full 64-element bitmap words.
//
// Bit-identity with the scalar path is by construction: every operation is
// a per-lane IEEE-754 double op (add/sub/mul/div/cvt) in the same order as
// fast_log2, integer selects become mask blends of the same operands, and
// the exponent is materialized through the exact 2^52 bias trick instead of
// an int64 convert (both produce the exact integer-valued double). No FMA
// instructions are emitted: the target clause enables avx2 only and the
// build pins -ffp-contract=off.
//
// The function is only called after a runtime __builtin_cpu_supports
// check in log_batch.cpp; this TU is compiled with the baseline flags and
// the AVX2 code generation is scoped to the one function attribute below.
#include <cstddef>
#include <cstdint>

#include <immintrin.h>

#include "kernels/log_batch.h"

namespace transpwr {
namespace kernels {
namespace detail {

__attribute__((target("avx2"))) void log_forward_f32_words_avx2(
    const float* in, float* mapped, std::size_t nwords, double scale,
    std::uint64_t* sign_words, std::uint64_t* zero_words, double* max_abs_log,
    LogFwdFlags* flags) {
  const __m256d kZero = _mm256_setzero_pd();
  const __m256d kOne = _mm256_set1_pd(1.0);
  const __m256d kHalf = _mm256_set1_pd(0.5);
  const __m256d kAbsMask =
      _mm256_castsi256_pd(_mm256_set1_epi64x(0x7fffffffffffffffLL));
  const __m256d kInf =
      _mm256_castsi256_pd(_mm256_set1_epi64x(0x7ff0000000000000LL));
  const __m256d kTwo64 = _mm256_set1_pd(0x1p64);
  const __m256d kSqrt2 = _mm256_set1_pd(0x1.6a09e667f3bcdp+0);
  const __m256d kTwoOverLn2 = _mm256_set1_pd(0x1.71547652b82fep+1);
  const __m256d kScale = _mm256_set1_pd(scale);
  const __m256i kExpMask = _mm256_set1_epi64x(0x7ff0000000000000LL);
  const __m256i kMantMask = _mm256_set1_epi64x(0x000fffffffffffffLL);
  const __m256i kOneBits = _mm256_set1_epi64x(0x3ff0000000000000LL);
  const __m256i kMagic = _mm256_set1_epi64x(0x4330000000000000LL);
  // 2^52 + 1023 (normal) / + 1087 (renormalized subnormal, extra 64).
  const __m256d kBiasN = _mm256_set1_pd(0x1p52 + 1023.0);
  const __m256d kBiasS = _mm256_set1_pd(0x1p52 + 1087.0);

  __m256d vmax = _mm256_setzero_pd();
  __m256d neg_acc = _mm256_setzero_pd();
  __m256d zero_acc = _mm256_setzero_pd();
  __m256d nf_acc = _mm256_setzero_pd();

  for (std::size_t w = 0; w < nwords; ++w) {
    std::uint64_t sign_w = 0;
    std::uint64_t zero_w = 0;
    const float* p_in = in + w * 64;
    float* p_out = mapped + w * 64;
    for (unsigned g = 0; g < 16; ++g) {
      const __m256d v = _mm256_cvtps_pd(_mm_loadu_ps(p_in + g * 4));
      const __m256d absv = _mm256_and_pd(v, kAbsMask);
      const __m256d negm = _mm256_cmp_pd(v, kZero, _CMP_LT_OQ);
      const __m256d zerom = _mm256_cmp_pd(v, kZero, _CMP_EQ_OQ);
      // !(|v| < inf) <=> !isfinite(v); unordered so NaN lands in the mask.
      nf_acc = _mm256_or_pd(nf_acc, _mm256_cmp_pd(absv, kInf, _CMP_NLT_UQ));
      neg_acc = _mm256_or_pd(neg_acc, negm);
      zero_acc = _mm256_or_pd(zero_acc, zerom);
      const __m256d tin = _mm256_blendv_pd(absv, kOne, zerom);

      // fast_log2, lane-parallel. Subnormal renorm via exact * 2^64.
      const __m256i bits = _mm256_castpd_si256(tin);
      const __m256d subn = _mm256_castsi256_pd(_mm256_cmpeq_epi64(
          _mm256_and_si256(bits, kExpMask), _mm256_setzero_si256()));
      const __m256d xn =
          _mm256_blendv_pd(tin, _mm256_mul_pd(tin, kTwo64), subn);
      const __m256i b2 = _mm256_castpd_si256(xn);
      // Exponent as an exact integer-valued double: (2^52 | ebits) viewed
      // as a double equals 2^52 + ebits, so subtracting the matching bias
      // (also an exact integer) leaves exactly (double)(ebits - bias) —
      // the same value the scalar path gets from the int64 convert.
      const __m256d ed = _mm256_sub_pd(
          _mm256_castsi256_pd(
              _mm256_or_si256(_mm256_srli_epi64(b2, 52), kMagic)),
          _mm256_blendv_pd(kBiasN, kBiasS, subn));
      __m256d m = _mm256_castsi256_pd(_mm256_or_si256(
          _mm256_and_si256(b2, kMantMask), kOneBits));
      const __m256d high = _mm256_cmp_pd(m, kSqrt2, _CMP_GE_OQ);
      m = _mm256_blendv_pd(m, _mm256_mul_pd(m, kHalf), high);
      const __m256d e2 = _mm256_add_pd(ed, _mm256_and_pd(high, kOne));
      const __m256d s = _mm256_div_pd(_mm256_sub_pd(m, kOne),
                                      _mm256_add_pd(m, kOne));
      const __m256d u = _mm256_mul_pd(s, s);
      __m256d p = _mm256_set1_pd(1.0 / 19.0);
      p = _mm256_add_pd(_mm256_mul_pd(p, u), _mm256_set1_pd(1.0 / 17.0));
      p = _mm256_add_pd(_mm256_mul_pd(p, u), _mm256_set1_pd(1.0 / 15.0));
      p = _mm256_add_pd(_mm256_mul_pd(p, u), _mm256_set1_pd(1.0 / 13.0));
      p = _mm256_add_pd(_mm256_mul_pd(p, u), _mm256_set1_pd(1.0 / 11.0));
      p = _mm256_add_pd(_mm256_mul_pd(p, u), _mm256_set1_pd(1.0 / 9.0));
      p = _mm256_add_pd(_mm256_mul_pd(p, u), _mm256_set1_pd(1.0 / 7.0));
      p = _mm256_add_pd(_mm256_mul_pd(p, u), _mm256_set1_pd(1.0 / 5.0));
      p = _mm256_add_pd(_mm256_mul_pd(p, u), _mm256_set1_pd(1.0 / 3.0));
      p = _mm256_add_pd(_mm256_mul_pd(p, u), kOne);
      // (double)e + (s * kTwoOverLn2) * p, the scalar association.
      const __m256d res = _mm256_add_pd(
          e2, _mm256_mul_pd(_mm256_mul_pd(s, kTwoOverLn2), p));

      const __m256d lv = _mm256_mul_pd(res, kScale);
      _mm_storeu_ps(p_out + g * 4, _mm256_cvtpd_ps(lv));
      // MAXPD(alv, vmax) returns vmax when alv is NaN and vmax is never
      // NaN, which reproduces the scalar strict-greater NaN skip.
      const __m256d alv = _mm256_and_pd(lv, kAbsMask);
      vmax = _mm256_max_pd(alv, vmax);

      const unsigned shift = g * 4;
      sign_w |= static_cast<std::uint64_t>(_mm256_movemask_pd(negm)) << shift;
      zero_w |= static_cast<std::uint64_t>(_mm256_movemask_pd(zerom))
                << shift;
    }
    sign_words[w] = sign_w;
    zero_words[w] = zero_w;
  }

  alignas(32) double lanes[4];
  _mm256_storeu_pd(lanes, vmax);
  double mx = *max_abs_log;
  for (double m : lanes)
    if (m > mx) mx = m;
  *max_abs_log = mx;
  if (_mm256_movemask_pd(neg_acc)) flags->any_negative = true;
  if (_mm256_movemask_pd(zero_acc)) flags->has_zeros = true;
  if (_mm256_movemask_pd(nf_acc)) flags->non_finite = true;
}

}  // namespace detail
}  // namespace kernels
}  // namespace transpwr

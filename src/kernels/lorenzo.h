// Lorenzo prediction + linear-scaling quantization, shared by the sz and
// interp codecs. Two layers:
//
//  - Per-point helpers (lorenzo_predict / quantize_point / dequantize_point):
//    the single source of truth for the stencil and the quantizer
//    arithmetic, verbatim the expressions the codecs carried before the
//    kernel layer existed. Streams stay bit-identical.
//
//  - Interior run kernels (lorenzo_quant_run / lorenzo_recon_run): the
//    native-dispatch fast path. They process a contiguous x-run whose every
//    point has a full stencil (no boundary zeros), with the row-above /
//    plane-above loads hoisted into sliding locals and the predictable
//    branch turned into selects. Each point still evaluates the exact
//    per-point expressions in the same order, so codes and reconstructed
//    values match the checked path bit for bit; boundary rows and x == 0
//    stay on the per-point helpers.
#ifndef TRANSPWR_KERNELS_LORENZO_H_
#define TRANSPWR_KERNELS_LORENZO_H_

#include <cmath>
#include <cstddef>
#include <cstdint>

#include "common/error.h"
#include "common/numeric.h"
#include "common/types.h"
#include "kernels/fastmath.h"

namespace transpwr {
namespace kernels {

// Boundary-checked Lorenzo predictor over the reconstructed buffer;
// out-of-range neighbors contribute 0. nd in {1,2,3}; sy/sz are element
// strides of the y and z axes (0 when the axis does not exist).
template <typename T>
inline double lorenzo_predict(const T* r, int nd, std::size_t sy,
                              std::size_t sz, std::size_t z, std::size_t y,
                              std::size_t x, std::size_t idx) {
  auto at = [&](std::size_t i) { return static_cast<double>(r[i]); };
  switch (nd) {
    case 1:
      return x > 0 ? at(idx - 1) : 0.0;
    case 2: {
      double a = x > 0 ? at(idx - 1) : 0.0;
      double b = y > 0 ? at(idx - sy) : 0.0;
      double ab = (x > 0 && y > 0) ? at(idx - sy - 1) : 0.0;
      return a + b - ab;
    }
    default: {
      double c100 = z > 0 ? at(idx - sz) : 0.0;
      double c010 = y > 0 ? at(idx - sy) : 0.0;
      double c001 = x > 0 ? at(idx - 1) : 0.0;
      double c110 = (z > 0 && y > 0) ? at(idx - sz - sy) : 0.0;
      double c101 = (z > 0 && x > 0) ? at(idx - sz - 1) : 0.0;
      double c011 = (y > 0 && x > 0) ? at(idx - sy - 1) : 0.0;
      double c111 = (z > 0 && y > 0 && x > 0) ? at(idx - sz - sy - 1) : 0.0;
      return c100 + c010 + c001 - c110 - c101 - c011 + c111;
    }
  }
}

template <typename T>
struct QuantStep {
  std::uint32_t code;  // 0 => outlier
  T recon;
};

// One step of the linear-scaling quantizer. two_eb must be 2.0 * eb and
// threshold (radius - 0.5) * 2.0 * eb, hoisted by the caller; the
// expressions inside match the historical inline code exactly (NaN data
// falls to the outlier path via the ordered compare).
template <typename T>
inline QuantStep<T> quantize_point(T orig, double pred, double eb,
                                   double two_eb, double threshold,
                                   std::int64_t radius) {
  const double v = static_cast<double>(orig);
  const double diff = v - pred;
  if (std::abs(diff) < threshold) {
    const std::int64_t q = llround_exact(diff / two_eb);
    const T r = narrow_to<T>(pred + two_eb * static_cast<double>(q));
    if (std::abs(static_cast<double>(r) - v) <= eb)
      return {static_cast<std::uint32_t>(radius + q), r};
  }
  return {0, orig};
}

template <typename T>
inline T dequantize_point(double pred, double two_eb, std::int64_t q) {
  return narrow_to<T>(pred + two_eb * static_cast<double>(q));
}

// Encode a contiguous interior x-run [idx0, idx0 + len) of one row under a
// constant bound. Caller guarantees every point has a full ND-dimensional
// stencil: idx0's x coordinate >= 1, and for ND >= 2 the row is not the
// first of its plane (nor, for ND == 3, in the first plane). Fills
// codes/recon only — the outlier VALUES are gathered afterwards from
// codes[i] == 0 positions, which preserves the raster emission order of the
// per-point path.
template <int ND, typename T>
inline void lorenzo_quant_run(const T* data, T* recon, std::uint32_t* codes,
                              std::size_t idx0, std::size_t len,
                              std::size_t sy, std::size_t sz, double eb,
                              double two_eb, double threshold,
                              std::int64_t radius) {
  // Sliding stencil state: prev* carry the x-1 column of each neighbor row,
  // so the interior body issues one load per existing neighbor row instead
  // of seven.
  double prev = static_cast<double>(recon[idx0 - 1]);
  double prev_up = 0.0, prev_zz = 0.0, prev_zy = 0.0;
  if constexpr (ND >= 2) prev_up = static_cast<double>(recon[idx0 - sy - 1]);
  if constexpr (ND == 3) {
    prev_zz = static_cast<double>(recon[idx0 - sz - 1]);
    prev_zy = static_cast<double>(recon[idx0 - sz - sy - 1]);
  }
  for (std::size_t k = 0; k < len; ++k) {
    const std::size_t idx = idx0 + k;
    double pred;
    if constexpr (ND == 1) {
      pred = prev;
    } else if constexpr (ND == 2) {
      const double up = static_cast<double>(recon[idx - sy]);
      pred = prev + up - prev_up;
      prev_up = up;
    } else {
      const double c100 = static_cast<double>(recon[idx - sz]);
      const double c010 = static_cast<double>(recon[idx - sy]);
      const double c110 = static_cast<double>(recon[idx - sz - sy]);
      // c101/c011/c111 are the previous column's c100/c010/c110 — the
      // sliding locals. Same left-to-right order as the checked path:
      // c100 + c010 + c001 - c110 - c101 - c011 + c111.
      pred = c100 + c010 + prev - c110 - prev_zz - prev_up + prev_zy;
      prev_zz = c100;
      prev_up = c010;
      prev_zy = c110;
    }
    const double v = static_cast<double>(data[idx]);
    const double diff = v - pred;
    const bool predictable = std::abs(diff) < threshold;
    // Select before the integer conversion: NaN / huge diffs must never
    // reach the (int64) cast (UB).
    const double ratio = predictable ? diff / two_eb : 0.0;
    const std::int64_t q = llround_exact(ratio);
    const T r = narrow_to<T>(pred + two_eb * static_cast<double>(q));
    const bool accept =
        predictable && std::abs(static_cast<double>(r) - v) <= eb;
    codes[idx] =
        accept ? static_cast<std::uint32_t>(radius + q) : 0u;
    const T rv = accept ? r : data[idx];
    recon[idx] = rv;
    prev = static_cast<double>(rv);
  }
}

// Wavefront encode of W consecutive interior rows (same z >= 1 plane, all
// y >= 1, full rows [0, nx), constant bound). Lane l covers row
// base + l * sy; at step t lane l sits at x = t - l, so each row trails
// the row above by exactly one column and every stencil load (row above
// at x and x - 1, previous plane anywhere) is final before it is read.
// Per-point expressions are the checked-path / lorenzo_quant_run bodies
// verbatim — the wavefront only reorders points that do not depend on each
// other, so codes and recon match the row-at-a-time path bit for bit.
// Why it is faster: the recon recurrence serializes each row at roughly
// one point per chain latency (divide + round-trip to int and back); W
// staggered rows keep W independent chains in flight. Caller guarantees
// nx >= W.
template <typename T, int W>
inline void lorenzo_quant_wavefront3(const T* data, T* recon,
                                     std::uint32_t* codes, std::size_t base,
                                     std::size_t nx, std::size_t sy,
                                     std::size_t sz, double eb, double two_eb,
                                     double threshold, std::int64_t radius) {
  double prev[W], prev_up[W], prev_zz[W], prev_zy[W];
  // x == 0 entry point of lane l: lorenzo_predict's nd == 3 expression with
  // the x-dependent neighbors zero, then the select-based quantizer body.
  // Also seeds the sliding stencil for x == 1 (c101/c011/c111 of the next
  // column are this column's c100/c010/c110).
  const auto boundary_step = [&](int l) {
    const std::size_t idx = base + static_cast<std::size_t>(l) * sy;
    const double c100 = static_cast<double>(recon[idx - sz]);
    const double c010 = static_cast<double>(recon[idx - sy]);
    const double c110 = static_cast<double>(recon[idx - sz - sy]);
    const double pred = c100 + c010 + 0.0 - c110 - 0.0 - 0.0 + 0.0;
    const double v = static_cast<double>(data[idx]);
    const double diff = v - pred;
    const bool predictable = std::abs(diff) < threshold;
    const double ratio = predictable ? diff / two_eb : 0.0;
    const std::int64_t q = llround_exact(ratio);
    const T r = narrow_to<T>(pred + two_eb * static_cast<double>(q));
    const bool accept =
        predictable && std::abs(static_cast<double>(r) - v) <= eb;
    codes[idx] = accept ? static_cast<std::uint32_t>(radius + q) : 0u;
    const T rv = accept ? r : data[idx];
    recon[idx] = rv;
    prev[l] = static_cast<double>(rv);
    prev_zz[l] = c100;
    prev_up[l] = c010;
    prev_zy[l] = c110;
  };
  const auto step = [&](int l, std::size_t x) {
    const std::size_t idx = base + static_cast<std::size_t>(l) * sy + x;
    const double c100 = static_cast<double>(recon[idx - sz]);
    const double c010 = static_cast<double>(recon[idx - sy]);
    const double c110 = static_cast<double>(recon[idx - sz - sy]);
    const double pred =
        c100 + c010 + prev[l] - c110 - prev_zz[l] - prev_up[l] + prev_zy[l];
    prev_zz[l] = c100;
    prev_up[l] = c010;
    prev_zy[l] = c110;
    const double v = static_cast<double>(data[idx]);
    const double diff = v - pred;
    const bool predictable = std::abs(diff) < threshold;
    const double ratio = predictable ? diff / two_eb : 0.0;
    const std::int64_t q = llround_exact(ratio);
    const T r = narrow_to<T>(pred + two_eb * static_cast<double>(q));
    const bool accept =
        predictable && std::abs(static_cast<double>(r) - v) <= eb;
    codes[idx] = accept ? static_cast<std::uint32_t>(radius + q) : 0u;
    const T rv = accept ? r : data[idx];
    recon[idx] = rv;
    prev[l] = static_cast<double>(rv);
  };
  for (int t = 0; t < W; ++t) {  // ramp: lane t enters with its x == 0
    boundary_step(t);
    for (int l = 0; l < t; ++l) step(l, static_cast<std::size_t>(t - l));
  }
  for (std::size_t t = W; t < nx; ++t)  // steady state: all W lanes live
    for (int l = 0; l < W; ++l) step(l, t - static_cast<std::size_t>(l));
  for (std::size_t t = nx; t + 1 < nx + W; ++t)  // drain
    for (int l = static_cast<int>(t - nx) + 1; l < W; ++l)
      step(l, t - static_cast<std::size_t>(l));
}

// Decode mirror of lorenzo_quant_run: reconstructs the same interior run
// from codes + outlier stream. outlier_next advances in raster order.
template <int ND, typename T>
inline void lorenzo_recon_run(const std::uint32_t* codes, T* recon,
                              const T* outliers, std::size_t n_outliers,
                              std::size_t& outlier_next, std::size_t idx0,
                              std::size_t len, std::size_t sy, std::size_t sz,
                              double two_eb, std::int64_t radius) {
  double prev = static_cast<double>(recon[idx0 - 1]);
  double prev_up = 0.0, prev_zz = 0.0, prev_zy = 0.0;
  if constexpr (ND >= 2) prev_up = static_cast<double>(recon[idx0 - sy - 1]);
  if constexpr (ND == 3) {
    prev_zz = static_cast<double>(recon[idx0 - sz - 1]);
    prev_zy = static_cast<double>(recon[idx0 - sz - sy - 1]);
  }
  for (std::size_t k = 0; k < len; ++k) {
    const std::size_t idx = idx0 + k;
    double pred;
    if constexpr (ND == 1) {
      pred = prev;
    } else if constexpr (ND == 2) {
      const double up = static_cast<double>(recon[idx - sy]);
      pred = prev + up - prev_up;
      prev_up = up;
    } else {
      const double c100 = static_cast<double>(recon[idx - sz]);
      const double c010 = static_cast<double>(recon[idx - sy]);
      const double c110 = static_cast<double>(recon[idx - sz - sy]);
      pred = c100 + c010 + prev - c110 - prev_zz - prev_up + prev_zy;
      prev_zz = c100;
      prev_up = c010;
      prev_zy = c110;
    }
    const std::uint32_t code = codes[idx];
    T rv;
    if (code == 0) {
      if (outlier_next >= n_outliers)
        throw StreamError("sz: outlier stream exhausted");
      rv = outliers[outlier_next++];
    } else {
      const std::int64_t q = static_cast<std::int64_t>(code) - radius;
      rv = dequantize_point<T>(pred, two_eb, q);
    }
    recon[idx] = rv;
    prev = static_cast<double>(rv);
  }
}

}  // namespace kernels
}  // namespace transpwr

#endif  // TRANSPWR_KERNELS_LORENZO_H_

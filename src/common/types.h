#ifndef TRANSPWR_COMMON_TYPES_H
#define TRANSPWR_COMMON_TYPES_H

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>

#include "common/error.h"

namespace transpwr {

/// Element type of a scalar field.
enum class DataType : std::uint8_t { kFloat32 = 0, kFloat64 = 1 };

inline std::size_t size_of(DataType t) {
  return t == DataType::kFloat32 ? 4 : 8;
}

template <typename T>
constexpr DataType data_type_of();
template <>
constexpr DataType data_type_of<float>() {
  return DataType::kFloat32;
}
template <>
constexpr DataType data_type_of<double>() {
  return DataType::kFloat64;
}

/// Logical shape of a 1-, 2-, or 3-dimensional scalar field.
///
/// Dimensions are stored slowest-varying first, i.e. a 3-D field with shape
/// {nz, ny, nx} is laid out with x contiguous — the layout used by SZ, ZFP,
/// and the HPC applications the paper evaluates.
struct Dims {
  std::array<std::size_t, 3> d{1, 1, 1};
  int nd = 1;

  Dims() = default;
  explicit Dims(std::size_t n) : d{n, 1, 1}, nd(1) {}
  Dims(std::size_t ny, std::size_t nx) : d{ny, nx, 1}, nd(2) {}
  Dims(std::size_t nz, std::size_t ny, std::size_t nx) : d{nz, ny, nx}, nd(3) {}

  std::size_t count() const {
    std::size_t n = 1;
    for (int i = 0; i < nd; ++i) n *= d[i];
    return n;
  }
  std::size_t operator[](int i) const { return d[static_cast<std::size_t>(i)]; }
  bool operator==(const Dims& o) const { return nd == o.nd && d == o.d; }

  void validate() const {
    if (nd < 1 || nd > 3) throw ParamError("Dims: nd must be 1, 2, or 3");
    for (int i = 0; i < nd; ++i)
      if (d[static_cast<std::size_t>(i)] == 0)
        throw ParamError("Dims: zero-sized dimension");
  }

  std::string to_string() const {
    std::string s;
    for (int i = 0; i < nd; ++i) {
      if (i) s += "x";
      s += std::to_string(d[static_cast<std::size_t>(i)]);
    }
    return s;
  }
};

}  // namespace transpwr

#endif  // TRANSPWR_COMMON_TYPES_H

#ifndef TRANSPWR_COMMON_CHECKSUM_H
#define TRANSPWR_COMMON_CHECKSUM_H

#include <cstdint>
#include <span>

namespace transpwr {

/// FNV-1a 64-bit checksum — cheap integrity guard for compressed
/// containers. Not cryptographic; it exists to turn silent bit rot or
/// truncation into a clean StreamError instead of garbage science data.
inline std::uint64_t fnv1a64(std::span<const std::uint8_t> bytes,
                             std::uint64_t seed = 0xcbf29ce484222325ULL) {
  std::uint64_t h = seed;
  for (std::uint8_t b : bytes) {
    h ^= b;
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace transpwr

#endif  // TRANSPWR_COMMON_CHECKSUM_H

#ifndef TRANSPWR_COMMON_CHECKSUM_H
#define TRANSPWR_COMMON_CHECKSUM_H

#include <cstdint>
#include <cstring>
#include <span>

namespace transpwr {

/// FNV-1a 64-bit checksum — cheap integrity guard for compressed
/// containers. Not cryptographic; it exists to turn silent bit rot or
/// truncation into a clean StreamError instead of garbage science data.
///
/// The hot loop loads 8 bytes per iteration with one unaligned word read
/// and feeds them through the byte-serial FNV-1a recurrence via shifts, so
/// the digest is bit-identical to the classic byte-at-a-time definition
/// (the recurrence itself is inherently sequential) while the multi-GiB
/// archive-verification path stops paying a load + branch per byte. Byte
/// order within the word follows the little-endian layout every transpwr
/// container already assumes.
inline std::uint64_t fnv1a64(std::span<const std::uint8_t> bytes,
                             std::uint64_t seed = 0xcbf29ce484222325ULL) {
  constexpr std::uint64_t kPrime = 0x100000001b3ULL;
  std::uint64_t h = seed;
  const std::uint8_t* p = bytes.data();
  std::size_t n = bytes.size();
  for (; n >= 8; n -= 8, p += 8) {
    std::uint64_t w;
    std::memcpy(&w, p, 8);
    h = (h ^ (w & 0xff)) * kPrime;
    h = (h ^ ((w >> 8) & 0xff)) * kPrime;
    h = (h ^ ((w >> 16) & 0xff)) * kPrime;
    h = (h ^ ((w >> 24) & 0xff)) * kPrime;
    h = (h ^ ((w >> 32) & 0xff)) * kPrime;
    h = (h ^ ((w >> 40) & 0xff)) * kPrime;
    h = (h ^ ((w >> 48) & 0xff)) * kPrime;
    h = (h ^ (w >> 56)) * kPrime;
  }
  for (; n > 0; --n, ++p) {
    h ^= *p;
    h *= kPrime;
  }
  return h;
}

}  // namespace transpwr

#endif  // TRANSPWR_COMMON_CHECKSUM_H

#ifndef TRANSPWR_COMMON_ERROR_H
#define TRANSPWR_COMMON_ERROR_H

#include <stdexcept>
#include <string>

namespace transpwr {

/// Root of the library's error hierarchy. Every failure the library raises
/// on purpose — malformed streams, bad parameters, exceeded decode limits —
/// derives from this type, so robustness harnesses (and embedding
/// applications) can write `catch (const transpwr::Error&)` and treat
/// anything else escaping a decoder as a bug.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown when a compressed stream is malformed (bad magic, truncated
/// payload, inconsistent header fields, or header values that would require
/// absurd allocations to honour).
class StreamError : public Error {
 public:
  explicit StreamError(const std::string& what) : Error(what) {}
};

/// Thrown when caller-supplied parameters are invalid (zero dimensions,
/// negative error bound, unknown scheme id).
class ParamError : public Error {
 public:
  explicit ParamError(const std::string& what) : Error(what) {}
};

}  // namespace transpwr

#endif  // TRANSPWR_COMMON_ERROR_H

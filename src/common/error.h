#ifndef TRANSPWR_COMMON_ERROR_H
#define TRANSPWR_COMMON_ERROR_H

#include <stdexcept>
#include <string>

namespace transpwr {

/// Thrown when a compressed stream is malformed (bad magic, truncated
/// payload, inconsistent header fields).
class StreamError : public std::runtime_error {
 public:
  explicit StreamError(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown when caller-supplied parameters are invalid (zero dimensions,
/// negative error bound, unknown scheme id).
class ParamError : public std::invalid_argument {
 public:
  explicit ParamError(const std::string& what) : std::invalid_argument(what) {}
};

}  // namespace transpwr

#endif  // TRANSPWR_COMMON_ERROR_H

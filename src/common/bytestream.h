#ifndef TRANSPWR_COMMON_BYTESTREAM_H
#define TRANSPWR_COMMON_BYTESTREAM_H

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <type_traits>
#include <vector>

#include "common/error.h"

namespace transpwr {

/// Growing byte buffer with little-endian POD append helpers. Used for the
/// self-describing container headers of every compressed stream.
class ByteWriter {
 public:
  template <typename T>
  void put(T v) {
    static_assert(std::is_trivially_copyable_v<T>);
    std::size_t off = bytes_.size();
    bytes_.resize(off + sizeof(T));
    std::memcpy(bytes_.data() + off, &v, sizeof(T));
  }

  void put_bytes(std::span<const std::uint8_t> b) {
    bytes_.insert(bytes_.end(), b.begin(), b.end());
  }

  /// Append a u64 length prefix followed by the bytes.
  void put_sized(std::span<const std::uint8_t> b) {
    put<std::uint64_t>(b.size());
    put_bytes(b);
  }

  std::size_t size() const { return bytes_.size(); }
  std::vector<std::uint8_t> take() { return std::move(bytes_); }

 private:
  std::vector<std::uint8_t> bytes_;
};

/// Sequential reader over a byte span; throws StreamError on truncation.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> bytes) : bytes_(bytes) {}

  template <typename T>
  T get() {
    static_assert(std::is_trivially_copyable_v<T>);
    require(sizeof(T));
    T v;
    std::memcpy(&v, bytes_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return v;
  }

  std::span<const std::uint8_t> get_bytes(std::size_t n) {
    require(n);
    auto s = bytes_.subspan(pos_, n);
    pos_ += n;
    return s;
  }

  /// Read a u64 length prefix, then that many bytes.
  std::span<const std::uint8_t> get_sized() {
    auto n = get<std::uint64_t>();
    return get_bytes(static_cast<std::size_t>(n));
  }

  std::size_t remaining() const { return bytes_.size() - pos_; }
  std::size_t pos() const { return pos_; }

 private:
  void require(std::size_t n) const {
    // Subtraction form: `pos_ + n` wraps for attacker-controlled n near
    // SIZE_MAX (e.g. a corrupt u64 length prefix), which would pass the
    // check and hand subspan() an out-of-range window.
    if (n > bytes_.size() - pos_)
      throw StreamError("ByteReader: truncated stream (need " +
                        std::to_string(n) + " bytes, have " +
                        std::to_string(bytes_.size() - pos_) + ")");
  }

  std::span<const std::uint8_t> bytes_;
  std::size_t pos_ = 0;
};

}  // namespace transpwr

#endif  // TRANSPWR_COMMON_BYTESTREAM_H

#ifndef TRANSPWR_COMMON_NUMERIC_H
#define TRANSPWR_COMMON_NUMERIC_H

#include <limits>

namespace transpwr {

/// Saturating double -> T conversion. `static_cast<float>(x)` is undefined
/// when the (rounded) value falls outside float's finite range
/// ([conv.double]), and both corrupt streams and legitimate edge cases can
/// produce such doubles: a reconstruction `x * (1 + eb)` with |x| near
/// FLT_MAX, or garbage quantization codes from a mutated bitstream. Clamping
/// to ±max keeps the cast defined and — for the log-transform inverse —
/// keeps the relative bound intact at the top of the exponent range, since
/// x >= max/(1+eb) implies |max - x| <= eb * |x|.
///
/// NaN and values already inside T's range pass through unchanged, so
/// in-range behaviour (and byte determinism) is identical to a plain cast.
template <typename T>
inline T narrow_to(double v) {
  constexpr double kMax = static_cast<double>(std::numeric_limits<T>::max());
  if (v > kMax) return std::numeric_limits<T>::max();
  if (v < -kMax) return -std::numeric_limits<T>::max();
  return static_cast<T>(v);  // NaN falls through; double->double is identity
}

}  // namespace transpwr

#endif  // TRANSPWR_COMMON_NUMERIC_H

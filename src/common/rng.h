#ifndef TRANSPWR_COMMON_RNG_H
#define TRANSPWR_COMMON_RNG_H

#include <cmath>
#include <cstdint>

namespace transpwr {

/// xoshiro256** — small, fast, deterministic PRNG used by the synthetic
/// dataset generators so every bench is exactly reproducible.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) {
    // splitmix64 expansion of the seed into the 4-word state.
    std::uint64_t x = seed;
    for (auto& w : s_) {
      x += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      w = z ^ (z >> 31);
    }
  }

  std::uint64_t next() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() { return static_cast<double>(next() >> 11) * 0x1.0p-53; }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Standard normal via Box–Muller (one value per call, cached pair).
  double normal() {
    if (has_cached_) {
      has_cached_ = false;
      return cached_;
    }
    double u1 = 0.0;
    while (u1 <= 1e-300) u1 = uniform();
    double u2 = uniform();
    double r = std::sqrt(-2.0 * std::log(u1));
    double theta = 6.283185307179586 * u2;
    cached_ = r * std::sin(theta);
    has_cached_ = true;
    return r * std::cos(theta);
  }

  /// Uniform integer in [0, n).
  std::uint64_t below(std::uint64_t n) { return n ? next() % n : 0; }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4];
  double cached_ = 0.0;
  bool has_cached_ = false;
};

}  // namespace transpwr

#endif  // TRANSPWR_COMMON_RNG_H

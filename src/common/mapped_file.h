#ifndef TRANSPWR_COMMON_MAPPED_FILE_H
#define TRANSPWR_COMMON_MAPPED_FILE_H

#include <cstdint>
#include <span>
#include <string>

namespace transpwr {

/// Read-only view of a file, memory-mapped when the platform allows it and
/// served by positional reads (`pread`) otherwise.
///
/// The TPAR read path wants two things from its I/O layer: zero-copy chunk
/// access (hand decoders spans straight into the page cache instead of
/// buffering every chunk through `fread`) and contention-free concurrent
/// reads (parallel chunk decode must not serialize on one shared seek
/// position). `MappedFile` provides both: `view()` exposes the whole file
/// as a span when the mapping succeeded, and `read_at()` is a positional
/// read that never moves a file offset, so any number of threads can call
/// it on one instance without locking.
///
/// Mapping failure is graceful, not fatal — an empty file, a filesystem
/// without mmap support, or address-space exhaustion simply leaves
/// `mapped()` false and every consumer falls back to `read_at`. Only
/// failing to open or stat the file throws.
class MappedFile {
 public:
  MappedFile() = default;
  /// Open `path` read-only and try to map it (unless `allow_map` is
  /// false, which forces the pread fallback — the benchmarking and test
  /// hook behind TRANSPWR_ARCHIVE_MMAP=0). Throws StreamError when the
  /// file cannot be opened or stat'ed.
  explicit MappedFile(const std::string& path, bool allow_map = true);
  ~MappedFile();

  MappedFile(MappedFile&& other) noexcept;
  MappedFile& operator=(MappedFile&& other) noexcept;
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;

  bool is_open() const { return fd_ >= 0; }
  bool mapped() const { return base_ != nullptr; }
  std::uint64_t size() const { return size_; }

  /// The whole file as a span; empty when not mapped. Pages fault in on
  /// first touch — the mapping is advised for random access, the TPAR
  /// chunk-lookup pattern.
  std::span<const std::uint8_t> view() const {
    return mapped() ? std::span<const std::uint8_t>(
                          base_, static_cast<std::size_t>(size_))
                    : std::span<const std::uint8_t>();
  }

  /// Positional read of exactly `out.size()` bytes at `offset`; copies
  /// from the mapping when present, `pread`s otherwise. Thread-safe —
  /// no shared file offset is involved. Throws StreamError (naming
  /// `what`) on out-of-range requests or short reads.
  void read_at(std::uint64_t offset, std::span<std::uint8_t> out,
               const char* what) const;

  /// Stable identity of the underlying inode, for keying shared caches:
  /// two opens of the same unmodified file agree, a rewritten file does
  /// not (size and mtime are part of the identity).
  std::uint64_t device() const { return device_; }
  std::uint64_t inode() const { return inode_; }
  std::uint64_t mtime_ns() const { return mtime_ns_; }

  /// Unmap and close; the object returns to the default-constructed state.
  void close();

 private:
  int fd_ = -1;
  const std::uint8_t* base_ = nullptr;
  std::uint64_t size_ = 0;
  std::uint64_t device_ = 0;
  std::uint64_t inode_ = 0;
  std::uint64_t mtime_ns_ = 0;
};

}  // namespace transpwr

#endif  // TRANSPWR_COMMON_MAPPED_FILE_H

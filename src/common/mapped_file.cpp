#include "common/mapped_file.h"

#include <cerrno>
#include <cstring>
#include <utility>

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include "common/error.h"

namespace transpwr {

MappedFile::MappedFile(const std::string& path, bool allow_map) {
  fd_ = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd_ < 0) throw StreamError("mapped_file: cannot open " + path);
  struct stat st;
  if (::fstat(fd_, &st) != 0) {
    ::close(fd_);
    fd_ = -1;
    throw StreamError("mapped_file: cannot stat " + path);
  }
  size_ = static_cast<std::uint64_t>(st.st_size);
  device_ = static_cast<std::uint64_t>(st.st_dev);
  inode_ = static_cast<std::uint64_t>(st.st_ino);
  mtime_ns_ = static_cast<std::uint64_t>(st.st_mtim.tv_sec) * 1000000000ull +
              static_cast<std::uint64_t>(st.st_mtim.tv_nsec);
  if (!allow_map || size_ == 0) return;
  void* base = ::mmap(nullptr, static_cast<std::size_t>(size_), PROT_READ,
                      MAP_PRIVATE, fd_, 0);
  if (base == MAP_FAILED) return;  // graceful: consumers pread instead
  base_ = static_cast<const std::uint8_t*>(base);
  // Chunk lookups jump around the payload; telling the kernel not to
  // read ahead keeps cold ROI reads from paging in neighboring chunks.
  ::madvise(base, static_cast<std::size_t>(size_), MADV_RANDOM);
}

MappedFile::~MappedFile() { close(); }

MappedFile::MappedFile(MappedFile&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      base_(std::exchange(other.base_, nullptr)),
      size_(std::exchange(other.size_, 0)),
      device_(std::exchange(other.device_, 0)),
      inode_(std::exchange(other.inode_, 0)),
      mtime_ns_(std::exchange(other.mtime_ns_, 0)) {}

MappedFile& MappedFile::operator=(MappedFile&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
    base_ = std::exchange(other.base_, nullptr);
    size_ = std::exchange(other.size_, 0);
    device_ = std::exchange(other.device_, 0);
    inode_ = std::exchange(other.inode_, 0);
    mtime_ns_ = std::exchange(other.mtime_ns_, 0);
  }
  return *this;
}

void MappedFile::read_at(std::uint64_t offset, std::span<std::uint8_t> out,
                         const char* what) const {
  if (offset > size_ || out.size() > size_ - offset)
    throw StreamError(std::string("mapped_file: ") + what +
                      " extends past the end of the file");
  if (out.empty()) return;
  if (mapped()) {
    std::memcpy(out.data(), base_ + offset, out.size());
    return;
  }
  std::size_t got = 0;
  while (got < out.size()) {
    ssize_t n = ::pread(fd_, out.data() + got, out.size() - got,
                        static_cast<off_t>(offset + got));
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0)
      throw StreamError(std::string("mapped_file: short read of ") + what);
    got += static_cast<std::size_t>(n);
  }
}

void MappedFile::close() {
  if (base_) {
    ::munmap(const_cast<std::uint8_t*>(base_),
             static_cast<std::size_t>(size_));
    base_ = nullptr;
  }
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  size_ = device_ = inode_ = mtime_ns_ = 0;
}

}  // namespace transpwr

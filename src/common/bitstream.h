#ifndef TRANSPWR_COMMON_BITSTREAM_H
#define TRANSPWR_COMMON_BITSTREAM_H

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

#include "common/error.h"

namespace transpwr {

/// Append-only bit stream writer. Bits are packed LSB-first into a growing
/// byte buffer; a 64-bit accumulator keeps the hot path branch-light.
class BitWriter {
 public:
  /// Append the low `nbits` of `value` (0 <= nbits <= 64).
  void write_bits(std::uint64_t value, unsigned nbits) {
    if (nbits == 0) return;
    if (nbits < 64) value &= (std::uint64_t{1} << nbits) - 1;
    acc_ |= value << fill_;
    unsigned produced = 64 - fill_;
    if (nbits >= produced) {
      flush_word();
      // `produced` bits of `value` were consumed; stash the rest.
      acc_ = produced < 64 ? value >> produced : 0;
      fill_ = nbits - produced;
    } else {
      fill_ += nbits;
    }
  }

  void write_bit(bool b) { write_bits(b ? 1u : 0u, 1); }

  /// Number of bits written so far.
  std::size_t bit_count() const { return bytes_.size() * 8 + fill_; }

  /// Flush the accumulator and return the backing bytes. The writer may not
  /// be used after calling take().
  std::vector<std::uint8_t> take() {
    unsigned pending = (fill_ + 7) / 8;
    for (unsigned i = 0; i < pending; ++i)
      bytes_.push_back(static_cast<std::uint8_t>(acc_ >> (8 * i)));
    acc_ = 0;
    fill_ = 0;
    return std::move(bytes_);
  }

 private:
  void flush_word() {
    std::size_t off = bytes_.size();
    bytes_.resize(off + 8);
    std::memcpy(bytes_.data() + off, &acc_, 8);
    acc_ = 0;
    fill_ = 0;
  }

  std::vector<std::uint8_t> bytes_;
  std::uint64_t acc_ = 0;
  unsigned fill_ = 0;  // bits currently held in acc_
};

/// Reader matching BitWriter's LSB-first packing. Reading past the end
/// throws StreamError.
class BitReader {
 public:
  explicit BitReader(std::span<const std::uint8_t> bytes) : bytes_(bytes) {}

  std::uint64_t read_bits(unsigned nbits) {
    if (nbits == 0) return 0;
    // Width check first: corrupt streams can ask for symbol widths far past
    // the 64-bit accumulator, where shifting by `nbits` would be UB.
    if (nbits > 64)
      throw StreamError("BitReader: read of " + std::to_string(nbits) +
                        " bits exceeds 64-bit accumulator");
    if (nbits > bytes_.size() * 8 - bit_pos_)
      throw StreamError("BitReader: read past end of stream");
    std::uint64_t out = load_from(bit_pos_);
    const unsigned have = 64 - (bit_pos_ & 7);  // valid bits in `out`
    if (nbits > have)
      // The word load straddled the accumulator; top up from the following
      // byte (in range: the remaining-bits check above passed, so the
      // stream extends at least `nbits` past bit_pos_).
      out |= std::uint64_t{bytes_[(bit_pos_ >> 3) + 8]} << have;
    if (nbits < 64) out &= (std::uint64_t{1} << nbits) - 1;
    bit_pos_ += nbits;
    return out;
  }

  bool read_bit() { return read_bits(1) != 0; }

  /// Read up to `nbits` (<= 57) without advancing; bits past the end read
  /// as 0.
  std::uint64_t peek_bits(unsigned nbits) const {
    std::uint64_t out = load_from(bit_pos_);
    return nbits < 64 ? out & ((std::uint64_t{1} << nbits) - 1) : out;
  }

  /// Advance by `nbits` without reading (also used to seek in fixed-rate
  /// streams).
  void skip_bits(std::size_t nbits) {
    // Subtraction form: fixed-rate seeks compute `block_index * rate_bits`
    // from header fields, so `bit_pos_ + nbits` can wrap for corrupt input.
    if (nbits > bytes_.size() * 8 - bit_pos_)
      throw StreamError("BitReader: skip past end of stream");
    bit_pos_ += nbits;
  }

  /// Jump to an absolute bit position (batched decoders keep a local
  /// cursor and resynchronize through this).
  void seek(std::size_t bit_pos) {
    if (bit_pos > bytes_.size() * 8)
      throw StreamError("BitReader: seek past end of stream");
    bit_pos_ = bit_pos;
  }

  std::size_t bit_pos() const { return bit_pos_; }
  std::size_t bits_remaining() const { return bytes_.size() * 8 - bit_pos_; }
  const std::uint8_t* data() const { return bytes_.data(); }
  std::size_t size_bytes() const { return bytes_.size(); }

 private:
  /// Up to 64 bits starting at bit `pos` (57+ of them valid when the word
  /// straddles the accumulator; bits past the end read as 0). One unaligned
  /// word load in the interior, a byte-assembly fallback in the last 8
  /// bytes.
  std::uint64_t load_from(std::size_t pos) const {
    const std::size_t byte = pos >> 3;
    std::uint64_t w = 0;
    if (byte + 8 <= bytes_.size()) {
      std::memcpy(&w, bytes_.data() + byte, 8);
    } else {
      for (std::size_t i = byte; i < bytes_.size(); ++i)
        w |= std::uint64_t{bytes_[i]} << (8 * (i - byte));
    }
    return w >> (pos & 7);
  }

  std::span<const std::uint8_t> bytes_;
  std::size_t bit_pos_ = 0;
};

}  // namespace transpwr

#endif  // TRANSPWR_COMMON_BITSTREAM_H

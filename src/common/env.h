#ifndef TRANSPWR_COMMON_ENV_H
#define TRANSPWR_COMMON_ENV_H

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <string_view>

#include "obs/obs.h"

namespace transpwr {
namespace env {

/// Shared checked parser for the TRANSPWR_* environment knobs. The three
/// historical call sites (TRANSPWR_THREADS, TRANSPWR_MAX_DECODE_BYTES,
/// TRANSPWR_ENTROPY_BLOCK) each grew a slightly different ad-hoc strtoull
/// loop — one silently dropped large values, one accepted trailing garbage,
/// one was strict. This helper gives them one contract:
///   - unset            -> nullopt (caller default)
///   - malformed        -> warn once on stderr, count `env.malformed`,
///                         nullopt (caller default)
///   - out of range     -> clamp into range when `clamp`, else treated as
///                         malformed; either way warn once
/// "Malformed" means anything but a plain full-string unsigned decimal:
/// empty, signs, trailing garbage, hex, overflow.

struct U64Range {
  std::uint64_t min = 1;
  std::uint64_t max = UINT64_MAX;
  bool clamp = false;
};

/// Pure full-string unsigned-decimal parser (unit-testable without touching
/// the process environment). Rejects empty strings, signs, whitespace,
/// trailing garbage, and values that overflow std::uint64_t.
inline std::optional<std::uint64_t> parse_u64(std::string_view text) {
  if (text.empty()) return std::nullopt;
  std::uint64_t v = 0;
  for (char c : text) {
    if (c < '0' || c > '9') return std::nullopt;
    std::uint64_t digit = static_cast<std::uint64_t>(c - '0');
    if (v > (UINT64_MAX - digit) / 10) return std::nullopt;
    v = v * 10 + digit;
  }
  return v;
}

namespace detail {

/// Warn at most once per variable name per process.
inline void warn_once(const char* name, const std::string& message) {
  static std::mutex mu;
  static std::set<std::string>* warned = new std::set<std::string>;
  {
    std::lock_guard<std::mutex> lock(mu);
    if (!warned->insert(name).second) return;
  }
  std::fprintf(stderr, "transpwr: warning: %s\n", message.c_str());
}

}  // namespace detail

/// Checked getenv: see the file comment for the contract.
inline std::optional<std::uint64_t> checked_u64(const char* name,
                                                U64Range range) {
  const char* raw = std::getenv(name);
  if (!raw) return std::nullopt;
  auto parsed = parse_u64(raw);
  if (!parsed) {
    obs::counter_add("env.malformed");
    detail::warn_once(name, std::string("ignoring malformed ") + name + "='" +
                                raw + "' (expected an unsigned integer); "
                                "using the built-in default");
    return std::nullopt;
  }
  if (*parsed < range.min || *parsed > range.max) {
    std::uint64_t clamped =
        *parsed < range.min ? range.min : range.max;
    if (range.clamp) {
      detail::warn_once(
          name, std::string(name) + "=" + std::string(raw) +
                    " is outside [" + std::to_string(range.min) + ", " +
                    std::to_string(range.max) + "]; clamping to " +
                    std::to_string(clamped));
      return clamped;
    }
    obs::counter_add("env.malformed");
    detail::warn_once(
        name, std::string("ignoring out-of-range ") + name + "=" + raw +
                  " (allowed [" + std::to_string(range.min) + ", " +
                  std::to_string(range.max) +
                  "]); using the built-in default");
    return std::nullopt;
  }
  return parsed;
}

}  // namespace env
}  // namespace transpwr

#endif  // TRANSPWR_COMMON_ENV_H

#ifndef TRANSPWR_COMMON_ENV_H
#define TRANSPWR_COMMON_ENV_H

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <string_view>

#include "obs/obs.h"

namespace transpwr {
namespace env {

/// Shared checked parser for the TRANSPWR_* environment knobs. The three
/// historical call sites (TRANSPWR_THREADS, TRANSPWR_MAX_DECODE_BYTES,
/// TRANSPWR_ENTROPY_BLOCK) each grew a slightly different ad-hoc strtoull
/// loop — one silently dropped large values, one accepted trailing garbage,
/// one was strict. This helper gives them one contract:
///   - unset            -> nullopt (caller default)
///   - malformed        -> warn once on stderr, count `env.malformed`,
///                         nullopt (caller default)
///   - out of range     -> clamp into range when `clamp`, else treated as
///                         malformed; either way warn once
/// "Malformed" means anything but a plain full-string unsigned decimal:
/// empty, signs, trailing garbage, hex, overflow.

struct U64Range {
  std::uint64_t min = 1;
  std::uint64_t max = UINT64_MAX;
  bool clamp = false;
};

/// Pure full-string unsigned-decimal parser (unit-testable without touching
/// the process environment). Rejects empty strings, signs, whitespace,
/// trailing garbage, and values that overflow std::uint64_t.
inline std::optional<std::uint64_t> parse_u64(std::string_view text) {
  if (text.empty()) return std::nullopt;
  std::uint64_t v = 0;
  for (char c : text) {
    if (c < '0' || c > '9') return std::nullopt;
    std::uint64_t digit = static_cast<std::uint64_t>(c - '0');
    if (v > (UINT64_MAX - digit) / 10) return std::nullopt;
    v = v * 10 + digit;
  }
  return v;
}

/// Size parser for byte-count knobs: a plain unsigned decimal with an
/// optional binary-multiple suffix k/K (KiB), m/M (MiB), g/G (GiB).
/// "64M" -> 67108864. Overflow during the multiply is malformed.
inline std::optional<std::uint64_t> parse_size_bytes(std::string_view text) {
  std::uint64_t shift = 0;
  if (!text.empty()) {
    switch (text.back()) {
      case 'k': case 'K': shift = 10; break;
      case 'm': case 'M': shift = 20; break;
      case 'g': case 'G': shift = 30; break;
      default: break;
    }
    if (shift) text.remove_suffix(1);
  }
  auto v = parse_u64(text);
  if (!v) return std::nullopt;
  if (shift && *v > (UINT64_MAX >> shift)) return std::nullopt;
  return *v << shift;
}

/// Duration parser, result in milliseconds: a plain unsigned decimal
/// with an optional unit suffix "ms" (the default), "s", or "m".
/// "30s" -> 30000. Overflow during the unit scale is malformed.
inline std::optional<std::uint64_t> parse_duration_ms(
    std::string_view text) {
  std::uint64_t scale = 1;
  if (text.size() >= 2 && text.substr(text.size() - 2) == "ms") {
    text.remove_suffix(2);
  } else if (!text.empty() && text.back() == 's') {
    scale = 1000;
    text.remove_suffix(1);
  } else if (!text.empty() && text.back() == 'm') {
    scale = 60000;
    text.remove_suffix(1);
  }
  auto v = parse_u64(text);
  if (!v) return std::nullopt;
  if (*v > UINT64_MAX / scale) return std::nullopt;
  return *v * scale;
}

namespace detail {

/// Warn at most once per variable name per process.
inline void warn_once(const char* name, const std::string& message) {
  static std::mutex mu;
  static std::set<std::string>* warned = new std::set<std::string>;
  {
    std::lock_guard<std::mutex> lock(mu);
    if (!warned->insert(name).second) return;
  }
  std::fprintf(stderr, "transpwr: warning: %s\n", message.c_str());
}

/// Shared malformed / out-of-range handling for every checked_* getter:
/// the contract from the file comment, parameterized over the pure
/// parser so ports, sizes, and durations keep identical semantics.
template <typename Parser>
std::optional<std::uint64_t> checked_value(const char* name, U64Range range,
                                           const char* expected,
                                           Parser&& parse) {
  const char* raw = std::getenv(name);
  if (!raw) return std::nullopt;
  auto parsed = parse(std::string_view(raw));
  if (!parsed) {
    obs::counter_add("env.malformed");
    warn_once(name, std::string("ignoring malformed ") + name + "='" + raw +
                        "' (expected " + expected +
                        "); using the built-in default");
    return std::nullopt;
  }
  if (*parsed < range.min || *parsed > range.max) {
    std::uint64_t clamped =
        *parsed < range.min ? range.min : range.max;
    if (range.clamp) {
      warn_once(
          name, std::string(name) + "=" + std::string(raw) +
                    " is outside [" + std::to_string(range.min) + ", " +
                    std::to_string(range.max) + "]; clamping to " +
                    std::to_string(clamped));
      return clamped;
    }
    obs::counter_add("env.malformed");
    warn_once(
        name, std::string("ignoring out-of-range ") + name + "=" + raw +
                  " (allowed [" + std::to_string(range.min) + ", " +
                  std::to_string(range.max) +
                  "]); using the built-in default");
    return std::nullopt;
  }
  return parsed;
}

}  // namespace detail

/// Checked getenv: see the file comment for the contract.
inline std::optional<std::uint64_t> checked_u64(const char* name,
                                                U64Range range) {
  return detail::checked_value(name, range, "an unsigned integer",
                               parse_u64);
}

/// The serve-layer knob family (TRANSPWR_SERVE_PORT,
/// TRANSPWR_SERVE_HTTP_PORT, TRANSPWR_SERVE_MAX_FRAME,
/// TRANSPWR_SERVE_IDLE_TIMEOUT_MS) shares the checked_u64 contract —
/// overflow-safe pure parsers, warn-once, `env.malformed` — with
/// unit-aware syntax where the quantity has one.

/// TCP port knob: plain decimal in [1, 65535].
inline std::optional<std::uint16_t> checked_port(const char* name) {
  auto v = detail::checked_value(name, {/*min=*/1, /*max=*/65535,
                                        /*clamp=*/false},
                                 "a TCP port (1-65535)", parse_u64);
  if (!v) return std::nullopt;
  return static_cast<std::uint16_t>(*v);
}

/// Byte-size knob: decimal with optional k/M/G binary suffix.
inline std::optional<std::uint64_t> checked_size_bytes(const char* name,
                                                       U64Range range) {
  return detail::checked_value(name, range,
                               "a byte size (optionally with a k/M/G "
                               "suffix)",
                               parse_size_bytes);
}

/// Duration knob, milliseconds: decimal with optional ms/s/m suffix.
inline std::optional<std::uint64_t> checked_duration_ms(const char* name,
                                                        U64Range range) {
  return detail::checked_value(name, range,
                               "a duration (optionally with an ms/s/m "
                               "suffix)",
                               parse_duration_ms);
}

}  // namespace env
}  // namespace transpwr

#endif  // TRANSPWR_COMMON_ENV_H

#ifndef TRANSPWR_COMMON_BITMAP_H
#define TRANSPWR_COMMON_BITMAP_H

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace transpwr {

/// Packed bit vector over 64-bit words, replacing std::vector<bool> for
/// sign bitmaps: contiguous word storage (8x denser iteration for the RLE
/// coder's run scans) and safe concurrent writes from parallel loops as
/// long as each writer owns a 64-bit-aligned index range — blocks aligned
/// to a multiple of 64 never touch the same word.
///
/// Invariant: bits past size() in the last word are zero, so word-level
/// comparison and run scanning need no tail masking.
class Bitmap {
 public:
  static constexpr std::size_t kWordBits = 64;

  Bitmap() = default;
  explicit Bitmap(std::size_t n) { assign(n, false); }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  void clear() {
    words_.clear();
    size_ = 0;
  }

  /// Resize to n bits, all set to `value`.
  void assign(std::size_t n, bool value) {
    size_ = n;
    words_.assign(word_count(),
                  value ? ~std::uint64_t{0} : std::uint64_t{0});
    mask_tail();
  }

  void resize(std::size_t n) {
    size_ = n;
    words_.resize(word_count(), 0);
    mask_tail();
  }

  void push_back(bool v) {
    resize(size_ + 1);
    if (v) set(size_ - 1);
  }

  bool operator[](std::size_t i) const {
    return (words_[i / kWordBits] >> (i % kWordBits)) & 1u;
  }

  void set(std::size_t i) { words_[i / kWordBits] |= word_bit(i); }

  void set(std::size_t i, bool v) {
    if (v)
      words_[i / kWordBits] |= word_bit(i);
    else
      words_[i / kWordBits] &= ~word_bit(i);
  }

  /// True if any bit is set (word-level scan).
  bool any() const {
    for (auto w : words_)
      if (w) return true;
    return false;
  }

  std::size_t word_count() const {
    return (size_ + kWordBits - 1) / kWordBits;
  }
  std::span<std::uint64_t> words() { return words_; }
  std::span<const std::uint64_t> words() const { return words_; }

  friend bool operator==(const Bitmap& a, const Bitmap& b) {
    return a.size_ == b.size_ && a.words_ == b.words_;
  }

 private:
  static std::uint64_t word_bit(std::size_t i) {
    return std::uint64_t{1} << (i % kWordBits);
  }

  void mask_tail() {
    std::size_t used = size_ % kWordBits;
    if (used && !words_.empty())
      words_.back() &= (std::uint64_t{1} << used) - 1;
  }

  std::vector<std::uint64_t> words_;
  std::size_t size_ = 0;
};

}  // namespace transpwr

#endif  // TRANSPWR_COMMON_BITMAP_H

#ifndef TRANSPWR_COMMON_PARALLEL_H
#define TRANSPWR_COMMON_PARALLEL_H

#include <cstddef>
#include <functional>

#include "common/thread_pool.h"

namespace transpwr {

/// Process-wide shared worker pool, created lazily on first use. Capacity is
/// `TRANSPWR_THREADS` (env var) when set, else
/// max(hardware_concurrency, 8) — the floor keeps explicitly requested
/// thread counts (e.g. `Params::threads = 8`) genuinely concurrent even on
/// small machines, at the cost of a few parked threads. See
/// docs/threading.md.
ThreadPool& global_pool();

/// Effective worker count when a caller passes `threads == 0`:
/// hardware concurrency (not pool capacity — oversubscribing by default
/// would only add context-switch overhead).
std::size_t default_threads();

struct ParallelOptions {
  /// Upper bound on concurrently executing tasks; 0 => default_threads().
  /// The calling thread always participates, so `max_threads == 1` runs the
  /// whole range inline without touching the pool.
  std::size_t max_threads = 0;
  /// Block size handed to the body per atomic-counter fetch. Blocks are
  /// always [k*grain, (k+1)*grain) ∩ [0, n) — aligned, so a grain that is a
  /// multiple of 64 lets bodies write packed bitmaps without word sharing.
  std::size_t grain = 4096;
};

/// Number of task slots parallel_for_slots() will use for a range of `n`
/// under `opts`, decided on the calling thread (nested calls from pool
/// workers always get 1). Call it to size per-slot partial accumulators
/// before launching the loop.
std::size_t parallel_task_count(std::size_t n, const ParallelOptions& opts = {});

/// Run fn(slot, begin, end) over [0, n) split into `grain`-sized blocks
/// handed out by an atomic counter; blocks until done. `slot` identifies
/// the executing task (0 <= slot < parallel_task_count(n, opts)) so bodies
/// can accumulate into per-slot partials without sharing. The first
/// exception thrown by any block is rethrown on the calling thread once all
/// tasks have stopped. Scheduling is work-stealing-free and dynamic: which
/// slot runs which block varies run to run, so reductions must be
/// order-insensitive (max, |, +commutative-exact) for deterministic output.
void parallel_for_slots(
    std::size_t n,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& fn,
    const ParallelOptions& opts = {});

/// parallel_for_slots without the slot index.
void parallel_for(std::size_t n,
                  const std::function<void(std::size_t, std::size_t)>& fn,
                  const ParallelOptions& opts = {});

/// Run body(0) .. body(n-1) with all n invocations live at the same time —
/// the contract barrier-synchronised rank bodies need (parallel_for only
/// promises eventual execution). Always runs on dedicated threads, never
/// the shared pool: bodies may block indefinitely (barriers) and fan out
/// nested parallel_for work, and pool-hosted bodies would both risk
/// deadlocking the pool and lose intra-body parallelism (nested regions
/// run inline on workers). The first exception thrown by a body is
/// rethrown after every body finished.
void run_concurrent(std::size_t n,
                    const std::function<void(std::size_t)>& body);

}  // namespace transpwr

#endif  // TRANSPWR_COMMON_PARALLEL_H

#ifndef TRANSPWR_COMMON_THREAD_POOL_H
#define TRANSPWR_COMMON_THREAD_POOL_H

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace transpwr {

/// Fixed-size worker pool. Tasks are opaque thunks; parallel_for distributes
/// an index range in contiguous chunks (predictable memory access per the
/// HPC guidance) and blocks until all chunks complete.
class ThreadPool {
 public:
  explicit ThreadPool(std::size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// True when the calling thread is a worker of any ThreadPool. The shared
  /// execution layer uses this to run nested parallel regions inline instead
  /// of re-entering the pool (which could otherwise deadlock: every worker
  /// waiting on tasks only parked workers could run).
  static bool in_worker();

  /// Enqueue a task; returns immediately.
  void submit(std::function<void()> task);

  /// Block until every submitted task has finished.
  void wait_idle();

  /// Run fn(begin, end) over [0, n) split into one contiguous chunk per
  /// worker; blocks until done. Runs inline when the pool has one thread.
  void parallel_for(std::size_t n,
                    const std::function<void(std::size_t, std::size_t)>& fn);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mu_;
  std::condition_variable task_ready_;
  std::condition_variable idle_;
  std::size_t active_ = 0;
  bool stop_ = false;
};

}  // namespace transpwr

#endif  // TRANSPWR_COMMON_THREAD_POOL_H

#include "common/parallel.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "common/env.h"

namespace transpwr {
namespace {

std::size_t pool_capacity() {
  // Historically values >= 4096 were dropped without a word; the checked
  // parser clamps into range and warns instead.
  if (auto v = env::checked_u64("TRANSPWR_THREADS",
                                {.min = 1, .max = 4095, .clamp = true}))
    return static_cast<std::size_t>(*v);
  unsigned hc = std::thread::hardware_concurrency();
  return std::max<std::size_t>(hc ? hc : 2, 8);
}

/// Collects the first exception thrown across a task group.
struct ErrorSlot {
  std::mutex mu;
  std::exception_ptr error;
  std::atomic<bool> set{false};

  void capture() {
    std::lock_guard lk(mu);
    if (!error) error = std::current_exception();
    set.store(true, std::memory_order_release);
  }
  void rethrow_if_set() {
    if (error) std::rethrow_exception(error);
  }
};

/// Countdown latch for helper tasks submitted to the pool (the caller
/// participates in the work itself, then waits here).
struct Completion {
  std::mutex mu;
  std::condition_variable cv;
  std::size_t pending;

  explicit Completion(std::size_t n) : pending(n) {}
  void finish_one() {
    std::lock_guard lk(mu);
    if (--pending == 0) cv.notify_all();
  }
  void wait() {
    std::unique_lock lk(mu);
    cv.wait(lk, [this] { return pending == 0; });
  }
};

}  // namespace

ThreadPool& global_pool() {
  static ThreadPool pool(pool_capacity());
  return pool;
}

std::size_t default_threads() {
  unsigned hc = std::thread::hardware_concurrency();
  return hc ? hc : 2;
}

std::size_t parallel_task_count(std::size_t n, const ParallelOptions& opts) {
  if (n == 0) return 1;
  if (ThreadPool::in_worker()) return 1;  // nested region: run inline
  const std::size_t grain = std::max<std::size_t>(1, opts.grain);
  const std::size_t blocks = (n + grain - 1) / grain;
  std::size_t cap = opts.max_threads ? opts.max_threads : default_threads();
  cap = std::min(cap, global_pool().size() + 1);  // caller is a worker too
  return std::max<std::size_t>(1, std::min(cap, blocks));
}

void parallel_for_slots(
    std::size_t n,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& fn,
    const ParallelOptions& opts) {
  if (n == 0) return;
  const std::size_t tasks = parallel_task_count(n, opts);
  if (tasks <= 1) {
    fn(0, 0, n);
    return;
  }

  const std::size_t grain = std::max<std::size_t>(1, opts.grain);
  std::atomic<std::size_t> next{0};
  ErrorSlot err;
  auto drain = [&](std::size_t slot) {
    try {
      for (;;) {
        if (err.set.load(std::memory_order_acquire)) return;
        std::size_t b = next.fetch_add(grain, std::memory_order_relaxed);
        if (b >= n) return;
        fn(slot, b, std::min(n, b + grain));
      }
    } catch (...) {
      err.capture();
    }
  };

  Completion done(tasks - 1);
  for (std::size_t slot = 1; slot < tasks; ++slot) {
    global_pool().submit([&, slot] {
      drain(slot);
      done.finish_one();
    });
  }
  drain(0);
  done.wait();
  err.rethrow_if_set();
}

void parallel_for(std::size_t n,
                  const std::function<void(std::size_t, std::size_t)>& fn,
                  const ParallelOptions& opts) {
  parallel_for_slots(
      n, [&fn](std::size_t, std::size_t b, std::size_t e) { fn(b, e); }, opts);
}

void run_concurrent(std::size_t n,
                    const std::function<void(std::size_t)>& body) {
  if (n == 0) return;
  ErrorSlot err;
  auto wrapped = [&](std::size_t rank) {
    try {
      body(rank);
    } catch (...) {
      err.capture();
    }
  };
  if (n == 1) {
    wrapped(0);
    err.rethrow_if_set();
    return;
  }

  // Always dedicated threads, never the shared pool. Bodies may block for
  // arbitrarily long (std::barrier ranks) and fan out nested parallel_for
  // work; hosting them on pool workers would (a) deadlock once the parked
  // bodies hold every worker a caller-thread body's nested region needs,
  // and (b) demote pool-hosted bodies to inline-serial nested execution
  // while the caller-thread body still fans out — asymmetric intra-body
  // parallelism. Dedicated threads keep every body a non-worker, so each
  // one's nested regions use the pool identically.
  std::vector<std::thread> threads;
  threads.reserve(n - 1);
  for (std::size_t r = 1; r < n; ++r) threads.emplace_back(wrapped, r);
  wrapped(0);
  for (auto& t : threads) t.join();
  err.rethrow_if_set();
}

}  // namespace transpwr

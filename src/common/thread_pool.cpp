#include "common/thread_pool.h"

#include <algorithm>

namespace transpwr {
namespace {

thread_local bool t_in_worker = false;

}  // namespace

bool ThreadPool::in_worker() { return t_in_worker; }

ThreadPool::ThreadPool(std::size_t num_threads) {
  num_threads = std::max<std::size_t>(1, num_threads);
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lk(mu_);
    stop_ = true;
  }
  task_ready_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard lk(mu_);
    tasks_.push(std::move(task));
  }
  task_ready_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock lk(mu_);
  idle_.wait(lk, [this] { return tasks_.empty() && active_ == 0; });
}

void ThreadPool::parallel_for(
    std::size_t n, const std::function<void(std::size_t, std::size_t)>& fn) {
  if (n == 0) return;
  std::size_t chunks = std::min(n, workers_.size());
  if (chunks <= 1) {
    fn(0, n);
    return;
  }
  std::size_t per = (n + chunks - 1) / chunks;
  for (std::size_t c = 0; c < chunks; ++c) {
    std::size_t b = c * per;
    std::size_t e = std::min(n, b + per);
    if (b >= e) break;
    submit([&fn, b, e] { fn(b, e); });
  }
  wait_idle();
}

void ThreadPool::worker_loop() {
  t_in_worker = true;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lk(mu_);
      task_ready_.wait(lk, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
      ++active_;
    }
    task();
    {
      std::lock_guard lk(mu_);
      --active_;
      if (tasks_.empty() && active_ == 0) idle_.notify_all();
    }
  }
}

}  // namespace transpwr

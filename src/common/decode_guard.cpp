#include "common/decode_guard.h"

#include <atomic>
#include <limits>
#include <string>

#include "common/env.h"
#include "common/error.h"
#include "obs/obs.h"

namespace transpwr {
namespace {

std::size_t default_limit() {
  if (auto v = env::checked_u64("TRANSPWR_MAX_DECODE_BYTES", {}))
    return static_cast<std::size_t>(*v);
  return std::size_t{1} << 34;  // 16 GiB
}

std::atomic<std::size_t>& limit_slot() {
  static std::atomic<std::size_t> limit{0};  // 0 => default
  return limit;
}

}  // namespace

std::size_t max_decode_bytes() {
  std::size_t v = limit_slot().load(std::memory_order_relaxed);
  if (v == 0) {
    static const std::size_t def = default_limit();
    return def;
  }
  return v;
}

void set_max_decode_bytes(std::size_t bytes) {
  limit_slot().store(bytes, std::memory_order_relaxed);
}

ScopedDecodeLimit::ScopedDecodeLimit(std::size_t bytes)
    : prev_(limit_slot().load(std::memory_order_relaxed)) {
  set_max_decode_bytes(bytes);
}

ScopedDecodeLimit::~ScopedDecodeLimit() { set_max_decode_bytes(prev_); }

void check_decode_alloc(std::size_t count, std::size_t elem_size,
                        const char* what) {
  const std::size_t limit = max_decode_bytes();
  if (elem_size != 0 &&
      (count > std::numeric_limits<std::size_t>::max() / elem_size ||
       count * elem_size > limit)) {
    obs::counter_add("decode_guard.rejections");
    throw StreamError(std::string(what) + ": declared size " +
                      std::to_string(count) + " x " +
                      std::to_string(elem_size) +
                      " bytes exceeds decode limit (" + std::to_string(limit) +
                      ")");
  }
}

std::size_t checked_count(const Dims& dims, const char* what) {
  dims.validate();
  std::size_t n = 1;
  for (int i = 0; i < dims.nd; ++i) {
    std::size_t di = dims[i];
    if (di != 0 && n > std::numeric_limits<std::size_t>::max() / di) {
      obs::counter_add("decode_guard.rejections");
      throw StreamError(std::string(what) +
                        ": element count overflows size_t (dims " +
                        dims.to_string() + ")");
    }
    n *= di;
  }
  return n;
}

}  // namespace transpwr

#ifndef TRANSPWR_COMMON_DECODE_GUARD_H
#define TRANSPWR_COMMON_DECODE_GUARD_H

#include <cstddef>

#include "common/types.h"

namespace transpwr {

/// Process-wide ceiling on the size of any single allocation a *decoder*
/// makes on behalf of untrusted header fields (element counts, dimensions,
/// declared payload sizes). Honest streams never get near it; a corrupt
/// u64 length of 2^60 turns into a clean StreamError instead of an
/// out-of-memory abort (which sanitizers treat as a crash).
///
/// Default: `TRANSPWR_MAX_DECODE_BYTES` env var when set, else 16 GiB.
/// Fuzz harnesses lower it (via ScopedDecodeLimit) so mutated streams with
/// large-but-plausible dimensions also fail fast.
std::size_t max_decode_bytes();

/// Override the ceiling for this process; `0` restores the default.
void set_max_decode_bytes(std::size_t bytes);

/// RAII override used by tests and the fuzz driver.
class ScopedDecodeLimit {
 public:
  explicit ScopedDecodeLimit(std::size_t bytes);
  ~ScopedDecodeLimit();
  ScopedDecodeLimit(const ScopedDecodeLimit&) = delete;
  ScopedDecodeLimit& operator=(const ScopedDecodeLimit&) = delete;

 private:
  std::size_t prev_;
};

/// Throw StreamError unless `count * elem_size` is overflow-free and within
/// max_decode_bytes(). `what` names the decoder for the message.
void check_decode_alloc(std::size_t count, std::size_t elem_size,
                        const char* what);

/// Overflow-checked Dims::count() for header-supplied shapes: validates the
/// dims and throws StreamError if the element count product wraps.
std::size_t checked_count(const Dims& dims, const char* what);

}  // namespace transpwr

#endif  // TRANSPWR_COMMON_DECODE_GUARD_H

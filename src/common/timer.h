#ifndef TRANSPWR_COMMON_TIMER_H
#define TRANSPWR_COMMON_TIMER_H

#include <chrono>

namespace transpwr {

/// Monotonic wall-clock timer for rate measurements.
class Timer {
 public:
  Timer() : start_(clock::now()) {}
  void reset() { start_ = clock::now(); }
  /// Seconds since construction or last reset().
  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace transpwr

#endif  // TRANSPWR_COMMON_TIMER_H

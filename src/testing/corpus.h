#ifndef TRANSPWR_TESTING_CORPUS_H
#define TRANSPWR_TESTING_CORPUS_H

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace transpwr {
namespace testing {

/// Minimized regression bitstreams for the decoder-hardening checks: each
/// case is a valid stream with a targeted header patch that must be
/// rejected with a clean transpwr::Error (bad mode bytes, zero block
/// edges, overflowing dims, giant declared sizes, oversized slab tables,
/// non-finite stream parameters...). The file-name prefix selects the
/// decoder (`sz_`, `zfp_`, `transformed_`, `chunked_`, `lz77_`, ...).
struct CorpusCase {
  std::string name;  ///< file stem; prefix routes to the decoder
  std::vector<std::uint8_t> stream;
};

/// The deterministic regression set. Every case is self-checked at build
/// time: constructing the list throws if a case fails to raise Error.
std::vector<CorpusCase> regression_corpus();

/// Decode `stream` with the decoder `name`'s prefix selects. Used both by
/// the corpus regression test and by `conformance --emit-corpus`
/// self-verification.
void decode_corpus_stream(const std::string& name,
                          std::span<const std::uint8_t> stream);

/// Write every regression case as `<name>.bin` under `dir`, which must
/// already exist.
void emit_corpus(const std::string& dir);

}  // namespace testing
}  // namespace transpwr

#endif  // TRANSPWR_TESTING_CORPUS_H

#ifndef TRANSPWR_TESTING_HUNTER_H
#define TRANSPWR_TESTING_HUNTER_H

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "core/compressor.h"

namespace transpwr {
namespace testing {

/// Adversarial bound-violation hunter: a directed search engine over the
/// guarantee surface. Where the conformance harness answers "does every
/// scheme hold its advertised contract on adversarial-but-representative
/// data", the hunter attacks the edges of float space where such
/// guarantees historically fail (denormals, the log singularity,
/// FLT_MAX/DBL_MAX-adjacent magnitudes, bounds near quantizer resolution)
/// and reduces anything it breaks to a minimal replayable reproducer.
///
/// Three engines compose:
///  1. round-trip hunting: edge-case fields x every scheme x precision x a
///     bound sweep, judged per point by the shared oracle
///     (testing/oracle.h), with a worst-observed-margin ledger per triple;
///  2. a ULP-level audit of the round-off-safe bound adjustment in
///     core/log_transform.cpp: the mapped data is perturbed by exactly
///     +/- b'_a (the worst any conforming inner codec can legally do) and
///     the reconstruction is checked point-wise — under both the generic
///     and native kernel dispatches, so the AVX2/AVX512 fastmath paths are
///     held to the same bound as scalar;
///  3. shrinking: a violating field is ddmin-reduced to a minimal field
///     that still violates, serialized as a `hunter_*.bin` reproducer
///     (tests/data/corpus/) that the regression test replays forever.

/// Edge-case input families beyond the PR 2 conformance set. Each targets
/// a region of float space where the relative-bound guarantee is most
/// fragile; all values are finite by construction.
enum class EdgeFamily : std::uint8_t {
  kDenormalBoundary = 0,  ///< ulp ladders straddling the denormal/normal line
  kLogSingularity,        ///< +/- tiny magnitudes around 0, sign-map stress
  kMaxMagnitude,          ///< FLT_MAX / DBL_MAX-adjacent values, mixed sign
  kExtremeDynamicRange,   ///< denorm_min .. max in one mixed-sign field
  kUlpNeighbors,          ///< ulp ladders around 1, powers of two, sqrt2 split
  kZeroSentinelStress,    ///< exact zeros interleaved with smallest denormals
};

const char* edge_family_name(EdgeFamily f);
EdgeFamily edge_family_from_name(const std::string& name);
std::span<const EdgeFamily> all_edge_families();

/// Deterministic edge-case field: same (family, n, seed, T) => same values.
template <typename T>
std::vector<T> make_edge_field(EdgeFamily family, std::size_t n,
                               std::uint64_t seed);

struct HunterConfig {
  std::uint64_t seed = 20260809;  ///< TRANSPWR_SEED overrides (checked env)
  std::size_t iters = 1;          ///< sweep repetitions with derived seeds
  std::size_t max_points = 1024;  ///< elements per generated field
  std::vector<Scheme> schemes;         ///< empty => all registered schemes
  std::vector<EdgeFamily> families;    ///< empty => all edge families
  /// Swept from friendly down to (and past) quantizer-resolution limits;
  /// bounds too tight for a precision must be *cleanly* refused, never
  /// silently violated. 2.5e-5 sits inside the float guard window where
  /// b'_a is positive but of the same magnitude as the round-off guard.
  std::vector<double> bounds = {1e-1, 1e-2, 1e-3, 1e-4, 2.5e-5, 1e-5, 1e-6};
  bool check_double = true;  ///< run float64 cases too
  bool minimize = true;      ///< shrink violating fields to reproducers
  bool ulp_audit = true;     ///< run the transform-level worst-case audit
  std::size_t minimize_budget = 600;  ///< max round trips per minimization
};

struct HunterViolation {
  std::string scheme;     ///< scheme name, or "log_transform" for audits
  std::string family;
  std::string precision;  ///< "float32" | "float64"
  std::string kind;       ///< rel_bound | zero_not_exact | audit_* | ...
  std::string detail;     ///< human-readable specifics incl. replay seed
  double bound = 0;
  std::uint64_t seed = 0;
  std::size_t index = 0;      ///< offending element, when applicable
  std::vector<double> reproducer;  ///< minimized field (when minimize on)
};

/// Worst observed error margin for one scheme x precision x bound triple:
/// the max over all checked points of observed_error / allowed_envelope.
/// 1.0 is the contract line; anything above it is a violation.
struct WorstMargin {
  std::string key;  ///< "SCHEME/precision/bound=B"
  double margin = 0;
  double input = 0;    ///< x at the worst point
  double output = 0;   ///< x' at the worst point
  std::string family;  ///< family that produced it
};

struct HunterReport {
  std::uint64_t effective_seed = 0;
  std::size_t cases_run = 0;
  std::size_t points_checked = 0;
  std::size_t clean_rejections = 0;  ///< too-tight bounds refused cleanly
  std::size_t audits_run = 0;
  std::vector<WorstMargin> worst;  ///< one entry per triple, sorted by key
  /// Every refused triple, once: "SCHEME/precision/bound=B" -> refusal
  /// message. A bound a precision cannot honor must be refused *visibly*;
  /// this ledger is how the report proves no case silently vanished.
  std::vector<std::pair<std::string, std::string>> rejections;
  std::vector<HunterViolation> violations;

  bool ok() const { return violations.empty(); }

  /// Summary + worst-margin ledger + the first few violation details.
  std::string table() const;
};

HunterReport run_hunt(const HunterConfig& config);

/// Greedy ddmin: removes chunks (halving granularity), then simplifies
/// surviving elements toward 1 and 0, while `still_violates` keeps
/// returning true. `budget` caps predicate evaluations.
template <typename T>
std::vector<T> minimize_field(
    std::vector<T> field,
    const std::function<bool(std::span<const T>)>& still_violates,
    std::size_t budget);

/// Minimal replayable reproducer ("THR1" files, tests/data/corpus/
/// hunter_*.bin): enough to re-run one violating round trip forever.
struct Reproducer {
  Scheme scheme = Scheme::kSzT;
  DataType dtype = DataType::kFloat32;
  double bound = 0;
  std::vector<double> values;  ///< exact (float values round-trip exactly)
};

std::vector<std::uint8_t> encode_reproducer(const Reproducer& r);
Reproducer decode_reproducer(std::span<const std::uint8_t> bytes);

/// Re-run a reproducer's round trip against the shared oracle. Returns ""
/// when the guarantee now holds (the regression stays fixed), else a
/// violation description.
std::string replay_reproducer(const Reproducer& r);

}  // namespace testing
}  // namespace transpwr

#endif  // TRANSPWR_TESTING_HUNTER_H

#ifndef TRANSPWR_TESTING_GENERATORS_H
#define TRANSPWR_TESTING_GENERATORS_H

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/types.h"

namespace transpwr {
namespace testing {

/// Adversarial input families for the conformance harness. Each one is a
/// floating-point population that historically breaks pointwise-relative
/// compressors: subnormals, signed zeros, sign flips, constant slabs,
/// fields spanning the whole exponent range, and non-finite lacings.
enum class Family : std::uint8_t {
  kRandomSmooth = 0,   ///< correlated smooth field, mixed sign
  kDenormals,          ///< values straddling T's subnormal range
  kNearZero,           ///< tiny magnitudes around the smallest normal
  kSignedZeros,        ///< +0 / -0 mixed with small values
  kSignAlternating,    ///< smooth magnitude, sign flips every element
  kConstantSlabs,      ///< piecewise-constant runs (incl. all-identical)
  kExponentRamp,       ///< magnitudes sweeping the full exponent range
  kHeavyTail,          ///< log-normal heavy tail over many decades
  kSparseZeros,        ///< smooth field with scattered exact zeros
  kTinyValuesMix,      ///< per-point mix of subnormal / normal / zero
  kNanLaced,           ///< smooth field with scattered quiet NaNs
  kInfLaced,           ///< smooth field with scattered +/-infinity
};

const char* family_name(Family f);
Family family_from_name(const std::string& name);

/// Every family, finite ones first.
std::span<const Family> all_families();

/// The families whose values are all finite.
std::span<const Family> finite_families();

bool family_is_finite(Family f);

/// Deterministic adversarial field: the same (family, n, seed, T) always
/// produces the same values, so every conformance failure is replayable
/// from its seed alone.
template <typename T>
std::vector<T> make_field(Family family, std::size_t n, std::uint64_t seed);

/// The root seed a harness run should use: TRANSPWR_SEED when set in the
/// environment (checked parse via common/env.h; malformed values warn once
/// and fall back), else `fallback`. Every harness prints the seed it
/// actually used in its report, so a CI log line is enough to replay a
/// failing hunt locally: TRANSPWR_SEED=<seed> <same command>.
std::uint64_t effective_seed(std::uint64_t fallback);

}  // namespace testing
}  // namespace transpwr

#endif  // TRANSPWR_TESTING_GENERATORS_H

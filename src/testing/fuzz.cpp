#include "testing/fuzz.h"

#include <algorithm>
#include <cstring>
#include <exception>
#include <limits>
#include <new>
#include <sstream>
#include <stdexcept>
#include <typeinfo>

#include "common/bitstream.h"
#include "common/checksum.h"
#include "common/decode_guard.h"
#include "common/error.h"
#include "core/compressor.h"
#include "lossless/blocked_huffman.h"
#include "lossless/lossless.h"
#include "lossless/lz77.h"
#include "lossless/rle.h"
#include "net/http.h"
#include "net/protocol.h"
#include "parallel/chunked.h"
#include "query/query.h"
#include "store/archive.h"
#include "store/chunk_cache.h"
#include "testing/generators.h"
#include "testing/temp_file.h"

namespace transpwr {
namespace testing {
namespace {

/// Small deterministic fields the scheme corpora are built from.
template <typename T>
std::vector<std::vector<std::uint8_t>> scheme_corpus(Scheme scheme,
                                                     std::uint64_t seed) {
  std::vector<std::vector<std::uint8_t>> corpus;
  auto comp = make_compressor(scheme);
  CompressorParams params;
  params.bound = 1e-2;

  struct Spec {
    Family family;
    int nd;
    std::size_t d0, d1;
  };
  static constexpr Spec kSpecs[] = {
      {Family::kRandomSmooth, 1, 96, 0},
      {Family::kSparseZeros, 2, 12, 8},
      {Family::kSignAlternating, 1, 33, 0},
  };
  for (const auto& s : kSpecs) {
    Dims dims;
    dims.nd = s.nd;
    dims.d[0] = s.d0;
    if (s.nd == 2) dims.d[1] = s.d1;
    auto data = make_field<T>(s.family, dims.count(), seed);
    corpus.push_back(comp->compress(data, dims, params));
  }
  return corpus;
}

std::vector<std::uint8_t> bytes_corpus(std::uint64_t seed, std::size_t n,
                                       bool compressible) {
  Rng rng(seed);
  std::vector<std::uint8_t> raw(n);
  for (auto& b : raw)
    b = compressible ? static_cast<std::uint8_t>(rng.below(4))
                     : static_cast<std::uint8_t>(rng.next());
  return raw;
}

}  // namespace

std::string FuzzReport::summary() const {
  std::ostringstream os;
  os << "fuzz: " << targets_run << " targets, " << decodes << " decodes ("
     << clean_errors << " clean errors, " << clean_decodes
     << " clean decodes), " << findings.size() << " findings\n";
  for (std::size_t i = 0; i < std::min<std::size_t>(findings.size(), 10);
       ++i)
    os << "  [" << findings[i].target << " iter " << findings[i].iter
       << "] " << findings[i].what << "\n";
  return os.str();
}

std::vector<FuzzTarget> default_fuzz_targets(std::uint64_t seed) {
  std::vector<FuzzTarget> targets;

  for (Scheme scheme : all_schemes()) {
    {
      FuzzTarget t;
      t.name = std::string(scheme_name(scheme)) + "_f32";
      t.corpus = scheme_corpus<float>(scheme, seed);
      t.decode = [scheme](std::span<const std::uint8_t> s) {
        make_compressor(scheme)->decompress_f32(s);
      };
      targets.push_back(std::move(t));
    }
    {
      FuzzTarget t;
      t.name = std::string(scheme_name(scheme)) + "_f64";
      t.corpus = scheme_corpus<double>(scheme, seed + 1);
      t.decode = [scheme](std::span<const std::uint8_t> s) {
        make_compressor(scheme)->decompress_f64(s);
      };
      targets.push_back(std::move(t));
    }
  }

  {
    FuzzTarget t;
    t.name = "lossless";
    // The 80 KiB compressible entry crosses the blocked-container
    // threshold, so the v2 (method 2) framing gets mutated too.
    t.corpus = {lossless::compress(bytes_corpus(seed, 512, true)),
                lossless::compress(bytes_corpus(seed + 1, 300, false)),
                lossless::compress(bytes_corpus(seed + 5, 80 * 1024, true))};
    t.decode = [](std::span<const std::uint8_t> s) {
      lossless::decompress(s);
    };
    targets.push_back(std::move(t));
  }
  {
    FuzzTarget t;
    t.name = "blocked_huffman";
    Rng rng(seed + 6);
    std::vector<std::uint32_t> small(700);
    for (auto& c : small) c = static_cast<std::uint32_t>(rng.below(9));
    std::vector<std::uint32_t> multi(300000);
    for (auto& c : multi) c = static_cast<std::uint32_t>(rng.below(1000));
    t.corpus = {lossless::blocked_encode(small, 16),
                lossless::blocked_encode(multi, 1024),
                lossless::blocked_encode({}, 4)};
    t.decode = [](std::span<const std::uint8_t> s) {
      lossless::blocked_decode(s);
    };
    targets.push_back(std::move(t));
  }
  {
    FuzzTarget t;
    t.name = "lz77";
    t.corpus = {lz77::compress(bytes_corpus(seed + 2, 512, true)),
                lz77::compress(bytes_corpus(seed + 3, 100, false))};
    t.decode = [](std::span<const std::uint8_t> s) { lz77::decompress(s); };
    targets.push_back(std::move(t));
  }
  {
    FuzzTarget t;
    t.name = "rle";
    Bitmap bits;
    bits.assign(777, false);
    Rng rng(seed + 4);
    for (std::size_t i = 0; i < bits.size(); ++i)
      if (rng.below(5) == 0) bits.set(i);
    BitWriter bw;
    rle::encode_bits(bits, bw);
    t.corpus = {bw.take()};
    t.decode = [](std::span<const std::uint8_t> s) {
      BitReader br(s);
      rle::decode_bits(br);
    };
    targets.push_back(std::move(t));
  }
  {
    FuzzTarget t;
    t.name = "chunked";
    chunked::Params p;
    p.scheme = Scheme::kSzAbs;
    p.num_chunks = 3;
    p.threads = 1;
    Dims dims;
    dims.nd = 2;
    dims.d[0] = 24;
    dims.d[1] = 8;
    auto data = make_field<float>(Family::kRandomSmooth, dims.count(), seed);
    t.corpus = {chunked::compress<float>(data, dims, p)};
    t.decode = [](std::span<const std::uint8_t> s) {
      chunked::decompress<float>(s, nullptr, 1);
    };
    targets.push_back(std::move(t));
  }
  {
    FuzzTarget t;
    t.name = "archive";
    // Two tiny in-memory archives: a multi-dataset one (exercises the
    // directory walk) and a multi-chunk one (exercises the extent tiling).
    std::vector<std::uint8_t> multi_ds;
    {
      store::ArchiveWriter w(&multi_ds);
      store::DatasetOptions opts;
      opts.scheme = Scheme::kSzAbs;
      opts.params.bound = 1e-2;
      opts.threads = 1;
      Dims dims;
      dims.nd = 1;
      dims.d[0] = 48;
      auto a = make_field<float>(Family::kRandomSmooth, dims.count(), seed);
      auto b = make_field<double>(Family::kSparseZeros, dims.count(),
                                  seed + 7);
      w.add_dataset<float>("a", a, dims, opts);
      w.add_dataset<double>("b", b, dims, opts);
      w.finish();
    }
    std::vector<std::uint8_t> multi_chunk;
    {
      store::ArchiveWriter w(&multi_chunk);
      store::DatasetOptions opts;
      opts.scheme = Scheme::kSzAbs;
      opts.params.bound = 1e-2;
      opts.rows_per_chunk = 9;
      opts.threads = 1;
      Dims dims;
      dims.nd = 2;
      dims.d[0] = 24;
      dims.d[1] = 8;
      auto data =
          make_field<float>(Family::kSignAlternating, dims.count(), seed);
      w.add_dataset<float>("field", data, dims, opts);
      w.finish();
    }
    t.corpus = {std::move(multi_ds), std::move(multi_chunk)};
    t.decode = [](std::span<const std::uint8_t> s) {
      auto replay = [](store::ArchiveReader& reader) {
        reader.verify();
        for (const auto& ds : reader.datasets()) {
          if (ds.dtype == DataType::kFloat32)
            reader.load<float>(ds.name, nullptr, 1);
          else
            reader.load<double>(ds.name, nullptr, 1);
        }
      };
      // Differential check: the mmap-backed file reader and the in-memory
      // view reader parse identical bytes, so they must agree on
      // accept/reject for every mutant. The shared chunk cache is pinned
      // off — scratch files recycle inodes and mtimes faster than the
      // archive-identity key can tell apart.
      store::ScopedCacheCapacity no_cache(0);
      bool file_ok = false;
      {
        TempFile tmp(s);
        try {
          store::ArchiveReader reader(tmp.path());
          replay(reader);
          file_ok = true;
        } catch (const Error&) {
        }
      }
      bool mem_ok = false;
      std::exception_ptr mem_err;
      try {
        store::ArchiveReader reader(s);
        replay(reader);
        mem_ok = true;
      } catch (const Error&) {
        mem_err = std::current_exception();
      }
      if (file_ok != mem_ok)
        throw std::logic_error(
            "archive fuzz: mmap and memory readers disagree on a stream");
      if (mem_err) std::rethrow_exception(mem_err);
    };
    targets.push_back(std::move(t));
  }
  {
    FuzzTarget t;
    t.name = "query";
    // Corpus: summarized v2 archives — one single-chunk with non-finite
    // values (exercises the inf/nan tallies in every summary decision)
    // and one multi-chunk (exercises pruning and block indexing). Mutants
    // hit the summary section as often as the chunk payloads, so the
    // query planner sees corrupted summaries behind both valid and
    // invalid footer checksums.
    std::vector<std::uint8_t> nonfinite;
    {
      store::ArchiveWriter w(&nonfinite);
      store::DatasetOptions opts;
      opts.scheme = Scheme::kSzAbs;
      opts.params.bound = 1e-2;
      opts.threads = 1;
      Dims dims;
      dims.nd = 1;
      dims.d[0] = 40;
      auto data = make_field<double>(Family::kRandomSmooth, dims.count(),
                                     seed + 9);
      data[3] = std::numeric_limits<double>::quiet_NaN();
      data[17] = std::numeric_limits<double>::infinity();
      data[29] = -std::numeric_limits<double>::infinity();
      w.add_dataset<double>("nf", data, dims, opts);
      w.finish();
    }
    std::vector<std::uint8_t> multi_chunk;
    {
      store::ArchiveWriter w(&multi_chunk);
      store::DatasetOptions opts;
      opts.scheme = Scheme::kSzAbs;
      opts.params.bound = 1e-2;
      opts.rows_per_chunk = 7;
      opts.threads = 1;
      Dims dims;
      dims.nd = 2;
      dims.d[0] = 30;
      dims.d[1] = 6;
      auto data =
          make_field<float>(Family::kSignAlternating, dims.count(), seed);
      w.add_dataset<float>("field", data, dims, opts);
      w.finish();
    }
    t.corpus = {std::move(nonfinite), std::move(multi_chunk)};
    t.decode = [](std::span<const std::uint8_t> s) {
      store::ScopedCacheCapacity no_cache(0);
      store::ArchiveReader reader(s);
      query::Predicate p;
      p.cmp = query::Cmp::kGe;
      p.threshold = 0.0;
      for (const auto& ds : reader.datasets()) {
        query::Executor ex(reader, ds.name);
        ex.find_chunks(p);
        ex.aggregate(ex.full_range());
        ex.count_where(p, ex.full_range());
        ex.preview(8, ex.full_range());
      }
    };
    targets.push_back(std::move(t));
  }
  {
    FuzzTarget t;
    t.name = "net_frame";
    // Corpus: one well-formed TPRQ1 frame per interesting shape (simple
    // op, string-carrying request, error response) plus an HTTP request
    // head, so mutants exercise both wire parsers the server feeds with
    // attacker-controlled bytes.
    std::vector<std::vector<std::uint8_t>> corpus;
    corpus.push_back(net::encode_frame(net::Op::kPing, 0, 1,
                                       bytes_corpus(seed + 8, 16, false)));
    {
      ByteWriter body;
      net::put_string(body, "snapshots.tpar");
      net::put_string(body, "vx");
      body.put<std::uint64_t>(0);
      body.put<std::uint64_t>(128);
      auto body_bytes = body.take();
      corpus.push_back(
          net::encode_frame(net::Op::kReadRows, 0, 7, body_bytes));
    }
    corpus.push_back(net::encode_error(
        static_cast<std::uint16_t>(net::Op::kLoad), 9,
        net::ErrCode::kNotFound, "serve: no such dataset: vx"));
    {
      static constexpr char kHttp[] =
          "GET /archives/a.tpar/datasets/f/rows?range=0:8&encoding=raw "
          "HTTP/1.1\r\nHost: localhost\r\nAccept: */*\r\n\r\n";
      corpus.emplace_back(
          reinterpret_cast<const std::uint8_t*>(kHttp),
          reinterpret_cast<const std::uint8_t*>(kHttp) + sizeof kHttp - 1);
    }
    t.corpus = std::move(corpus);
    t.decode = [](std::span<const std::uint8_t> s) {
      // Every mutant goes through both parsers: clean accept or a typed
      // Error, never a crash, hang, or unguarded allocation. The frame
      // cap mirrors the server's TRANSPWR_SERVE_MAX_FRAME guard.
      try {
        net::Frame f = net::parse_frame(s, 1u << 20);
        if (f.is_error()) {
          net::ErrCode code{};
          std::string message;
          net::parse_error_body(f.body, &code, &message);
        }
      } catch (const Error&) {
      }
      net::parse_http_request(std::string_view(
          reinterpret_cast<const char*>(s.data()), s.size()));
    };
    targets.push_back(std::move(t));
  }
  return targets;
}

std::vector<std::uint8_t> mutate_stream(std::span<const std::uint8_t> base,
                                        Rng& rng) {
  std::vector<std::uint8_t> s(base.begin(), base.end());
  if (s.empty()) s.push_back(0);

  switch (rng.below(8)) {
    case 0:  // truncate
      s.resize(rng.below(s.size() + 1));
      break;
    case 1: {  // flip 1..8 random bits
      std::size_t flips = 1 + rng.below(8);
      for (std::size_t i = 0; i < flips; ++i)
        s[rng.below(s.size())] ^= static_cast<std::uint8_t>(
            1u << rng.below(8));
      break;
    }
    case 2: {  // overwrite 1..16 random bytes
      std::size_t writes = 1 + rng.below(16);
      for (std::size_t i = 0; i < writes; ++i)
        s[rng.below(s.size())] = static_cast<std::uint8_t>(rng.next());
      break;
    }
    case 3: {  // header-biased: corrupt the first ~64 bytes
      std::size_t span = std::min<std::size_t>(s.size(), 64);
      std::size_t writes = 1 + rng.below(8);
      for (std::size_t i = 0; i < writes; ++i)
        s[rng.below(span)] = static_cast<std::uint8_t>(rng.next());
      break;
    }
    case 4: {  // length-field attack: plant a huge u64 at a random offset
      if (s.size() >= 8) {
        std::uint64_t huge = ~std::uint64_t{0} >> rng.below(16);
        std::size_t off = rng.below(s.size() - 7);
        std::memcpy(s.data() + off, &huge, 8);
      }
      break;
    }
    case 5: {  // splice: append a copy of the head (duplicated sections)
      std::size_t cut = rng.below(s.size());
      std::vector<std::uint8_t> head(s.begin(),
                                     s.begin() + static_cast<std::ptrdiff_t>(cut));
      s.insert(s.end(), head.begin(), head.end());
      break;
    }
    case 6: {  // append random tail
      std::size_t extra = 1 + rng.below(64);
      for (std::size_t i = 0; i < extra; ++i)
        s.push_back(static_cast<std::uint8_t>(rng.next()));
      break;
    }
    default: {  // fully random short stream
      s.resize(1 + rng.below(96));
      for (auto& b : s) b = static_cast<std::uint8_t>(rng.next());
      break;
    }
  }
  return s;
}

FuzzReport run_fuzz(const FuzzConfig& config) {
  FuzzReport report;
  // Cap decoder allocations so plausible-looking huge headers fail fast
  // instead of timing the run out; restored on exit.
  ScopedDecodeLimit limit(config.max_decode_bytes);

  auto targets = default_fuzz_targets(config.seed);
  for (auto& target : targets) {
    if (!config.targets.empty() &&
        std::find(config.targets.begin(), config.targets.end(),
                  target.name) == config.targets.end())
      continue;
    report.targets_run++;
    Rng rng(config.seed ^ fnv1a64({reinterpret_cast<const std::uint8_t*>(
                                       target.name.data()),
                                   target.name.size()}));
    for (std::size_t iter = 0; iter < config.iters_per_target; ++iter) {
      const auto& base = target.corpus[rng.below(target.corpus.size())];
      auto mutated = mutate_stream(base, rng);
      report.decodes++;
      try {
        target.decode(mutated);
        report.clean_decodes++;
      } catch (const Error&) {
        report.clean_errors++;
      } catch (const std::bad_alloc&) {
        report.findings.push_back(
            {target.name, "std::bad_alloc escaped the decode guard", iter,
             std::move(mutated)});
      } catch (const std::exception& e) {
        report.findings.push_back(
            {target.name,
             std::string(typeid(e).name()) + ": " + e.what(), iter,
             std::move(mutated)});
      } catch (...) {
        report.findings.push_back(
            {target.name, "non-standard exception", iter,
             std::move(mutated)});
      }
    }
  }
  return report;
}

}  // namespace testing
}  // namespace transpwr

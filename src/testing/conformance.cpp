#include "testing/conformance.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <map>
#include <sstream>

#include "common/error.h"
#include "parallel/chunked.h"
#include "testing/oracle.h"

namespace transpwr {
namespace testing {
namespace {

struct CaseContext {
  Scheme scheme;
  Family family;
  double bound;
  std::uint64_t seed;
  const char* precision;
  ConformanceReport* report;
};

void add_violation(const CaseContext& c, const std::string& kind,
                   const std::string& detail, std::size_t index = 0) {
  Violation v;
  v.scheme = scheme_name(c.scheme);
  v.family = family_name(c.family);
  v.kind = kind;
  std::ostringstream os;
  os << detail << " [" << c.precision << ", bound=" << c.bound
     << ", seed=" << c.seed << "]";
  v.detail = os.str();
  v.bound = c.bound;
  v.index = index;
  c.report->violations.push_back(v);
}

Dims shape_for(std::size_t n, std::size_t variant) {
  Dims d;
  if (variant % 3 == 0 || n < 64) {
    d.nd = 1;
    d.d[0] = n;
  } else if (variant % 3 == 1) {
    d.nd = 2;
    d.d[0] = n / 16;
    d.d[1] = 16;
  } else {
    d.nd = 3;
    d.d[0] = n / 64;
    d.d[1] = 8;
    d.d[2] = 8;
  }
  return d;
}

/// Pointwise value checks for one finished round trip, judged against the
/// shared oracle (testing/oracle.h) the hunter uses too.
template <typename T>
void check_values(const CaseContext& c, std::span<const T> in,
                  std::span<const T> out) {
  const bool finite_family = family_is_finite(c.family);

  std::size_t reported = 0;
  for (std::size_t i = 0; i < in.size(); ++i) {
    const double x = static_cast<double>(in[i]);
    const double y = static_cast<double>(out[i]);
    c.report->points_checked++;
    if (reported >= 3) break;  // one case, a few representative points

    if (!std::isfinite(x)) {
      if (!preserves_nonfinite(c.scheme)) continue;
      const bool ok = std::isnan(x) ? std::isnan(y) : x == y;
      if (!ok) {
        std::ostringstream os;
        os << "non-finite input " << x << " became " << y << " at " << i;
        add_violation(c, "nonfinite_not_preserved", os.str(), i);
        reported++;
      }
      continue;
    }

    if (finite_family && !std::isfinite(y)) {
      std::ostringstream os;
      os << "finite input " << x << " decoded to non-finite " << y << " at "
         << i;
      add_violation(c, "nonfinite_output", os.str(), i);
      reported++;
      continue;
    }

    const double err = std::abs(y - x);
    const Envelope env = point_envelope<T>(c.scheme, c.bound, x);
    switch (env.cls) {
      case PointClass::kUnchecked:
        break;
      case PointClass::kExact:
        if (y != x) {
          std::ostringstream os;
          os << "exact zero decoded to " << y << " at " << i;
          add_violation(c, "zero_not_exact", os.str(), i);
          reported++;
        }
        break;
      case PointClass::kBounded:
        if (!(err <= env.allowed)) {
          std::ostringstream os;
          if (guarantee_of(c.scheme) == Guarantee::kAbsolute)
            os << "|" << y << " - " << x << "| = " << err << " > " << c.bound
               << " at " << i;
          else
            os << "rel err " << err / std::abs(x) << " > " << c.bound
               << " (x=" << x << ", x'=" << y << ") at " << i;
          add_violation(c,
                        guarantee_of(c.scheme) == Guarantee::kAbsolute
                            ? "abs_bound"
                            : "rel_bound",
                        os.str(), i);
          reported++;
        }
        break;
    }
  }
}

/// One compress/decompress round trip with all invariant checks.
template <typename T>
void run_case(const CaseContext& c, std::span<const T> data, Dims dims) {
  auto comp = make_compressor(c.scheme);
  CompressorParams params;
  params.bound = c.bound;
  c.report->cases_run++;

  std::vector<std::uint8_t> stream;
  try {
    stream = comp->compress(data, dims, params);
  } catch (const Error& e) {
    if (!family_is_finite(c.family)) {
      // A clean refusal of NaN/Inf input is a valid contract.
      c.report->clean_rejections++;
      return;
    }
    add_violation(c, "compress_error",
                  std::string("compress threw: ") + e.what());
    return;
  } catch (const std::exception& e) {
    add_violation(c, "compress_exception",
                  std::string("compress threw non-transpwr ") + e.what());
    return;
  }

  if (stream.empty()) {
    add_violation(c, "empty_stream", "compress produced no bytes");
    return;
  }
  // Size sanity: a lossy compressor must not blow the input up by more
  // than a small factor plus header slack.
  const std::size_t ceiling = 4096 + 8 * data.size() * sizeof(T);
  if (stream.size() > ceiling) {
    std::ostringstream os;
    os << "stream is " << stream.size() << " bytes for "
       << data.size() * sizeof(T) << " input bytes";
    add_violation(c, "stream_too_large", os.str());
  }

  Dims got;
  std::vector<T> out;
  try {
    if constexpr (std::is_same_v<T, float>)
      out = comp->decompress_f32(stream, &got);
    else
      out = comp->decompress_f64(stream, &got);
  } catch (const std::exception& e) {
    add_violation(c, "decompress_error",
                  std::string("own stream failed to decode: ") + e.what());
    return;
  }

  if (!(got == dims)) {
    add_violation(c, "dims_mismatch", "decoded dims differ from input dims");
    return;
  }
  if (out.size() != data.size()) {
    std::ostringstream os;
    os << "decoded " << out.size() << " elements, expected " << data.size();
    add_violation(c, "size_mismatch", os.str());
    return;
  }
  check_values<T>(c, data, out);
}

/// Serial-vs-parallel determinism of the chunked container: the stream and
/// the reconstruction must be byte-identical however many threads ran.
void check_parallel_identity(Scheme scheme, double bound,
                             std::uint64_t seed, ConformanceReport* report) {
  CaseContext c{scheme, Family::kRandomSmooth, bound, seed, "float32",
                report};
  auto data = make_field<float>(Family::kRandomSmooth, 1024, seed);
  Dims dims;
  dims.nd = 2;
  dims.d[0] = 64;
  dims.d[1] = 16;

  chunked::Params p;
  p.scheme = scheme;
  p.compressor.bound = bound;
  p.num_chunks = 4;
  report->cases_run++;
  try {
    p.threads = 1;
    auto serial = chunked::compress<float>(data, dims, p);
    p.threads = 4;
    auto parallel = chunked::compress<float>(data, dims, p);
    if (serial != parallel) {
      add_violation(c, "parallel_divergence",
                    "chunked streams differ between 1 and 4 threads");
      return;
    }
    auto out1 = chunked::decompress<float>(serial, nullptr, 1);
    auto out4 = chunked::decompress<float>(serial, nullptr, 4);
    if (out1.size() != out4.size() ||
        std::memcmp(out1.data(), out4.data(),
                    out1.size() * sizeof(float)) != 0) {
      add_violation(c, "parallel_divergence",
                    "chunked reconstruction differs between 1 and 4 threads");
      return;
    }
    report->points_checked += out1.size();
  } catch (const std::exception& e) {
    add_violation(c, "parallel_error",
                  std::string("chunked round trip threw: ") + e.what());
  }
}

/// Degenerate and tiny shapes every scheme must survive.
template <typename T>
void check_degenerate(Scheme scheme, double bound, std::uint64_t seed,
                      ConformanceReport* report) {
  static constexpr std::size_t kShapes[][4] = {
      // nd, d0, d1, d2
      {1, 1, 0, 0}, {1, 2, 0, 0}, {1, 3, 0, 0},  {1, 7, 0, 0},
      {2, 1, 1, 0}, {2, 1, 7, 0}, {2, 5, 3, 0},  {3, 1, 1, 1},
      {3, 4, 4, 4}, {3, 2, 1, 3},
  };
  for (const auto& s : kShapes) {
    Dims dims;
    dims.nd = static_cast<int>(s[0]);
    for (int i = 0; i < dims.nd; ++i) dims.d[static_cast<std::size_t>(i)] = s[i + 1];
    const std::size_t n = dims.count();
    CaseContext c{scheme, Family::kRandomSmooth, bound, seed,
                  sizeof(T) == 4 ? "float32" : "float64", report};
    auto data = make_field<T>(Family::kRandomSmooth, n, seed + n);
    run_case<T>(c, data, dims);
  }
}

}  // namespace

std::string ConformanceReport::table() const {
  std::ostringstream os;
  os << "conformance: " << cases_run << " cases, " << points_checked
     << " points checked, " << clean_rejections << " clean rejections, "
     << violations.size() << " violations (seed=" << effective_seed << ")\n";
  if (violations.empty()) return os.str();

  std::map<std::string, std::size_t> counts;
  for (const auto& v : violations) counts[v.scheme + " / " + v.kind]++;
  os << "  violations by scheme/kind:\n";
  for (const auto& [key, count] : counts)
    os << "    " << key << ": " << count << "\n";
  os << "  first findings:\n";
  for (std::size_t i = 0; i < std::min<std::size_t>(violations.size(), 10);
       ++i) {
    const auto& v = violations[i];
    os << "    [" << v.scheme << " / " << v.family << " / " << v.kind
       << "] " << v.detail << "\n";
  }
  return os.str();
}

ConformanceReport run_conformance(const ConformanceConfig& config) {
  ConformanceReport report;
  // TRANSPWR_SEED (checked env) overrides the built-in constant, so a CI
  // log's seed line is all that is needed to replay a failing sweep.
  const std::uint64_t base_seed = effective_seed(config.seed);
  report.effective_seed = base_seed;

  std::vector<Scheme> schemes = config.schemes;
  if (schemes.empty())
    schemes.assign(all_schemes().begin(), all_schemes().end());
  std::vector<Family> families = config.families;
  if (families.empty())
    families.assign(all_families().begin(), all_families().end());

  const std::size_t n = std::max<std::size_t>(config.max_points, 64);

  for (std::size_t iter = 0; iter < std::max<std::size_t>(config.iters, 1);
       ++iter) {
    std::size_t variant = iter;
    for (Scheme scheme : schemes) {
      for (Family family : families) {
        for (double bound : config.bounds) {
          const std::uint64_t seed =
              base_seed + 1000003 * iter +
              17 * static_cast<std::uint64_t>(family);
          Dims dims = shape_for(n, variant++);
          {
            CaseContext c{scheme, family, bound, seed, "float32", &report};
            auto data = make_field<float>(family, dims.count(), seed);
            run_case<float>(c, data, dims);
          }
          if (config.check_double) {
            CaseContext c{scheme, family, bound, seed, "float64", &report};
            auto data = make_field<double>(family, dims.count(), seed);
            run_case<double>(c, data, dims);
          }
        }
      }
      if (config.check_degenerate_dims)
        check_degenerate<float>(scheme, config.bounds.front(),
                                base_seed + iter, &report);
      if (config.check_parallel_identity)
        check_parallel_identity(scheme, config.bounds.front(),
                                base_seed + iter, &report);
    }
  }
  return report;
}

}  // namespace testing
}  // namespace transpwr

#ifndef TRANSPWR_TESTING_CONFORMANCE_H
#define TRANSPWR_TESTING_CONFORMANCE_H

#include <cstdint>
#include <string>
#include <vector>

#include "core/compressor.h"
#include "testing/generators.h"

namespace transpwr {
namespace testing {

/// Differential round-trip checker over every registered compressor.
///
/// For each (scheme, family, bound, precision) case the harness compresses
/// an adversarial field, decompresses it, and checks the guarantee the
/// scheme actually advertises: the pointwise relative bound for the
/// transformed schemes, ISABELA and FPZIP, the absolute bound for SZ_ABS,
/// the nonzero-point relative bound for the blockwise SZ_PWR baseline, and
/// only finite-output/shape invariants for ZFP_P (approximate by design).
/// Non-finite families must either round-trip NaN/Inf (SZ) or be rejected
/// with a clean transpwr::Error. A separate pass checks degenerate shapes
/// and serial-vs-parallel byte identity of the chunked container.
struct ConformanceConfig {
  std::uint64_t seed = 20260807;
  std::size_t iters = 1;            ///< repetitions with derived seeds
  std::size_t max_points = 4096;    ///< elements per generated field
  std::vector<Scheme> schemes;      ///< empty => all registered schemes
  std::vector<Family> families;     ///< empty => all families
  std::vector<double> bounds = {1e-2, 1e-3};
  bool check_double = true;         ///< run float64 cases too
  bool check_parallel_identity = true;
  bool check_degenerate_dims = true;
};

struct Violation {
  std::string scheme;
  std::string family;
  std::string kind;    ///< rel_bound | abs_bound | zero_not_exact | ...
  std::string detail;  ///< human-readable specifics incl. replay seed
  double bound = 0;
  std::size_t index = 0;  ///< offending element, when applicable
};

struct ConformanceReport {
  /// The seed the run actually used: TRANSPWR_SEED when set, else the
  /// config seed. Printed by table() so CI logs are replayable.
  std::uint64_t effective_seed = 0;
  std::size_t cases_run = 0;
  std::size_t points_checked = 0;
  std::size_t clean_rejections = 0;  ///< non-finite inputs refused cleanly
  std::vector<Violation> violations;

  bool ok() const { return violations.empty(); }

  /// Per-scheme / per-kind violation counts plus the first few details.
  std::string table() const;
};

ConformanceReport run_conformance(const ConformanceConfig& config);

}  // namespace testing
}  // namespace transpwr

#endif  // TRANSPWR_TESTING_CONFORMANCE_H

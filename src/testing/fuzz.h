#ifndef TRANSPWR_TESTING_FUZZ_H
#define TRANSPWR_TESTING_FUZZ_H

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "common/rng.h"

namespace transpwr {
namespace testing {

/// Decoder-robustness fuzzing: every decoder must survive arbitrary bytes.
/// A target is a named decode entry point plus a seed corpus of valid
/// streams; the engine mutates corpus items (truncation, bit flips, header
/// rewrites, length-field attacks, splices) and feeds them back. The only
/// acceptable failure is a clean `transpwr::Error`; anything else — a
/// crash, a foreign exception, a bad_alloc that escaped the decode guard —
/// is a finding.
struct FuzzConfig {
  std::uint64_t seed = 20260807;
  std::size_t iters_per_target = 2000;
  std::size_t max_decode_bytes = 4u << 20;  ///< decode-guard ceiling
  std::vector<std::string> targets;         ///< empty => all targets
};

struct FuzzFinding {
  std::string target;
  std::string what;  ///< exception type/message, or "decode succeeded" notes
  std::size_t iter = 0;
  std::vector<std::uint8_t> stream;  ///< the offending input, for replay
};

struct FuzzReport {
  std::size_t targets_run = 0;
  std::size_t decodes = 0;
  std::size_t clean_errors = 0;   ///< decoder threw transpwr::Error
  std::size_t clean_decodes = 0;  ///< mutation was benign, decode succeeded
  std::vector<FuzzFinding> findings;

  bool ok() const { return findings.empty(); }
  std::string summary() const;
};

struct FuzzTarget {
  std::string name;
  std::vector<std::vector<std::uint8_t>> corpus;
  std::function<void(std::span<const std::uint8_t>)> decode;
};

/// One target per registered scheme and precision, plus the lossless
/// substrate (lossless container, lz77, rle) and the chunked container.
std::vector<FuzzTarget> default_fuzz_targets(std::uint64_t seed);

/// One deterministic mutation of `base` (never returns `base` unchanged
/// unless the chosen mutation happens to be the identity on it).
std::vector<std::uint8_t> mutate_stream(std::span<const std::uint8_t> base,
                                        Rng& rng);

FuzzReport run_fuzz(const FuzzConfig& config);

}  // namespace testing
}  // namespace transpwr

#endif  // TRANSPWR_TESTING_FUZZ_H

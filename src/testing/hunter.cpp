#include "testing/hunter.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstring>
#include <limits>
#include <map>
#include <optional>
#include <set>
#include <sstream>

#include "common/bytestream.h"
#include "common/error.h"
#include "common/rng.h"
#include "core/log_transform.h"
#include "kernels/dispatch.h"
#include "obs/obs.h"
#include "testing/generators.h"
#include "testing/oracle.h"

namespace transpwr {
namespace testing {
namespace {

constexpr std::array<EdgeFamily, 6> kAllEdgeFamilies = {
    EdgeFamily::kDenormalBoundary,    EdgeFamily::kLogSingularity,
    EdgeFamily::kMaxMagnitude,        EdgeFamily::kExtremeDynamicRange,
    EdgeFamily::kUlpNeighbors,        EdgeFamily::kZeroSentinelStress};

constexpr std::uint32_t kReproMagic = 0x31524854u;  // "THR1" little-endian
constexpr std::uint64_t kReproMaxValues = 1u << 22;

/// Walk |k| ulps from v toward +/-infinity. Never called where the walk
/// could leave the finite range (callers clamp their anchors).
template <typename T>
T walk_ulps(T v, std::int64_t k) {
  const T to = k >= 0 ? std::numeric_limits<T>::infinity()
                      : -std::numeric_limits<T>::infinity();
  for (std::int64_t i = k < 0 ? -k : k; i > 0; --i) v = std::nextafter(v, to);
  return v;
}

template <typename T>
T pow2_value(int e, double mantissa, bool negative) {
  double v = std::ldexp(mantissa, e);
  if (negative) v = -v;
  return static_cast<T>(v);
}

std::string triple_key(const std::string& scheme, const char* precision,
                       double bound) {
  std::ostringstream os;
  os << scheme << "/" << precision << "/bound=" << bound;
  return os.str();
}

Dims shape_for(std::size_t n, std::size_t variant) {
  Dims d;
  if (variant % 3 == 0 || n < 64) {
    d.nd = 1;
    d.d[0] = n;
  } else if (variant % 3 == 1) {
    d.nd = 2;
    d.d[0] = n / 16;
    d.d[1] = 16;
  } else {
    d.nd = 3;
    d.d[0] = n / 64;
    d.d[1] = 8;
    d.d[2] = 8;
  }
  return d;
}

// --- round-trip engine -------------------------------------------------------

template <typename T>
struct TripOutcome {
  bool param_rejected = false;  ///< compress refused with ParamError
  std::string reject_msg;
  std::string error_kind;  ///< nonempty when the round trip itself failed
  std::string error_detail;
  std::vector<T> out;
};

template <typename T>
TripOutcome<T> round_trip(Scheme scheme, double bound, std::span<const T> data,
                          Dims dims) {
  TripOutcome<T> o;
  auto comp = make_compressor(scheme);
  CompressorParams params;
  params.bound = bound;

  std::vector<std::uint8_t> stream;
  try {
    stream = comp->compress(data, dims, params);
  } catch (const ParamError& e) {
    // The one legal refusal: a bound this precision cannot honor must be
    // rejected up front, never silently violated.
    o.param_rejected = true;
    o.reject_msg = e.what();
    return o;
  } catch (const std::exception& e) {
    o.error_kind = "compress_error";
    o.error_detail = std::string("compress threw: ") + e.what();
    return o;
  }
  if (stream.empty()) {
    o.error_kind = "empty_stream";
    o.error_detail = "compress produced no bytes";
    return o;
  }

  Dims got;
  try {
    if constexpr (std::is_same_v<T, float>)
      o.out = comp->decompress_f32(stream, &got);
    else
      o.out = comp->decompress_f64(stream, &got);
  } catch (const std::exception& e) {
    o.error_kind = "decompress_error";
    o.error_detail = std::string("own stream failed to decode: ") + e.what();
    return o;
  }
  if (!(got == dims)) {
    o.error_kind = "dims_mismatch";
    o.error_detail = "decoded dims differ from input dims";
    return o;
  }
  if (o.out.size() != data.size()) {
    std::ostringstream os;
    os << "decoded " << o.out.size() << " elements, expected " << data.size();
    o.error_kind = "size_mismatch";
    o.error_detail = os.str();
  }
  return o;
}

struct PointViol {
  std::size_t index = 0;
  std::string kind;
  std::string detail;
};

/// Judge every point of a finished round trip against the shared oracle and
/// fold margins into the worst-observed ledger. Returns the first violating
/// point, if any.
template <typename T>
std::optional<PointViol> scan_points(Scheme scheme, double bound,
                                     std::span<const T> in,
                                     std::span<const T> out,
                                     const std::string& key,
                                     const char* family_name_str,
                                     std::map<std::string, WorstMargin>* ledger,
                                     HunterReport* report) {
  std::optional<PointViol> first;
  WorstMargin& wm = (*ledger)[key];
  if (wm.key.empty()) wm.key = key;

  for (std::size_t i = 0; i < in.size(); ++i) {
    const double x = static_cast<double>(in[i]);
    const double y = static_cast<double>(out[i]);
    report->points_checked++;

    if (!std::isfinite(y)) {
      if (!first) {
        std::ostringstream os;
        os << "finite input " << x << " decoded to non-finite " << y
           << " at " << i;
        first = PointViol{i, "nonfinite_output", os.str()};
      }
      if (std::isfinite(wm.margin)) {
        wm.margin = std::numeric_limits<double>::infinity();
        wm.input = x;
        wm.output = y;
        wm.family = family_name_str;
      }
      continue;
    }

    const Envelope env = point_envelope<T>(scheme, bound, x);
    switch (env.cls) {
      case PointClass::kUnchecked:
        break;
      case PointClass::kExact:
        if (y != x) {
          if (!first) {
            std::ostringstream os;
            os << "exact zero decoded to " << y << " at " << i;
            first = PointViol{i, "zero_not_exact", os.str()};
          }
          wm.margin = std::numeric_limits<double>::infinity();
          wm.input = x;
          wm.output = y;
          wm.family = family_name_str;
        }
        break;
      case PointClass::kBounded: {
        const double err = std::abs(y - x);
        const double margin = env.allowed > 0
                                  ? err / env.allowed
                                  : (err > 0 ? std::numeric_limits<
                                                   double>::infinity()
                                             : 0.0);
        if (margin > wm.margin) {
          wm.margin = margin;
          wm.input = x;
          wm.output = y;
          wm.family = family_name_str;
        }
        if (!(err <= env.allowed) && !first) {
          std::ostringstream os;
          if (guarantee_of(scheme) == Guarantee::kAbsolute)
            os << "|" << y << " - " << x << "| = " << err << " > " << bound
               << " at " << i;
          else
            os << "rel err " << err / std::abs(x) << " > " << bound
               << " (x=" << x << ", x'=" << y
               << ", allowed=" << env.allowed << ") at " << i;
          first = PointViol{i, guarantee_of(scheme) == Guarantee::kAbsolute
                                   ? "abs_bound"
                                   : "rel_bound",
                            os.str()};
        }
        break;
      }
    }
  }
  return first;
}

/// Minimization predicate: does a 1-D round trip of `field` still violate?
/// A ParamError refusal is NOT a violation (clean rejection is the
/// contract); any other failure or oracle breach is.
template <typename T>
bool field_violates_1d(Scheme scheme, double bound, std::span<const T> field) {
  if (field.empty()) return false;
  Dims dims(field.size());
  auto trip = round_trip<T>(scheme, bound, field, dims);
  if (trip.param_rejected) return false;
  if (!trip.error_kind.empty()) return true;
  for (std::size_t i = 0; i < field.size(); ++i) {
    const double x = static_cast<double>(field[i]);
    const double y = static_cast<double>(trip.out[i]);
    if (!std::isfinite(y)) return true;
    const Envelope env = point_envelope<T>(scheme, bound, x);
    if (env.cls == PointClass::kExact && y != x) return true;
    if (env.cls == PointClass::kBounded && !(std::abs(y - x) <= env.allowed))
      return true;
  }
  return false;
}

void record_rejection(const std::string& key, const std::string& msg,
                      std::set<std::string>* seen, HunterReport* report) {
  report->clean_rejections++;
  if (seen->insert(key).second) report->rejections.emplace_back(key, msg);
}

template <typename T>
void run_hunter_case(const HunterConfig& config, Scheme scheme,
                     EdgeFamily family, double bound, std::uint64_t seed,
                     std::size_t variant,
                     std::map<std::string, WorstMargin>* ledger,
                     std::set<std::string>* rejected,
                     HunterReport* report) {
  const char* precision = sizeof(T) == 4 ? "float32" : "float64";
  const std::string key = triple_key(scheme_name(scheme), precision, bound);

  auto data = make_edge_field<T>(family, config.max_points, seed);
  Dims dims = shape_for(data.size(), variant);

  report->cases_run++;
  obs::counter_add("hunter.cases");

  auto trip = round_trip<T>(scheme, bound, std::span<const T>(data), dims);
  if (trip.param_rejected) {
    record_rejection(key, trip.reject_msg, rejected, report);
    return;
  }

  std::optional<PointViol> viol;
  if (!trip.error_kind.empty()) {
    viol = PointViol{0, trip.error_kind, trip.error_detail};
  } else {
    viol = scan_points<T>(scheme, bound, data, trip.out, key,
                          edge_family_name(family), ledger, report);
  }
  if (!viol) return;

  obs::counter_add("hunter.violations");
  HunterViolation v;
  v.scheme = scheme_name(scheme);
  v.family = edge_family_name(family);
  v.precision = precision;
  v.kind = viol->kind;
  v.bound = bound;
  v.seed = seed;
  v.index = viol->index;
  {
    std::ostringstream os;
    os << viol->detail << " [" << precision << ", bound=" << bound
       << ", seed=" << seed << ", shape=" << dims.to_string() << "]";
    v.detail = os.str();
  }

  if (config.minimize) {
    // Reproducers are 1-D; only minimize when the violation survives
    // flattening (block codecs can be shape-sensitive).
    auto pred = [&](std::span<const T> f) {
      return field_violates_1d<T>(scheme, bound, f);
    };
    if (field_violates_1d<T>(scheme, bound, std::span<const T>(data))) {
      auto minimized = minimize_field<T>(
          data, std::function<bool(std::span<const T>)>(pred),
          config.minimize_budget);
      v.reproducer.assign(minimized.begin(), minimized.end());
    }
  }
  report->violations.push_back(std::move(v));
}

// --- ULP audit of the log transform itself -----------------------------------

/// Perturb one mapped value by exactly +/- b'_a — the worst any conforming
/// absolute-bound inner codec can legally return — rounded to T without
/// ever leaving the legal band.
template <typename T>
T worst_legal(T mapped, double ba, bool up) {
  const double m = static_cast<double>(mapped);
  const double target = up ? m + ba : m - ba;
  T t = static_cast<T>(target);
  // Rounding to T may overshoot the band by up to half an ulp; step back.
  while (std::abs(static_cast<double>(t) - m) > ba)
    t = std::nextafter(t, mapped);
  return t;
}

template <typename T>
void run_audit_case(const HunterConfig& config, EdgeFamily family,
                    double bound, double base, kernels::Dispatch disp,
                    std::uint64_t seed,
                    std::map<std::string, WorstMargin>* ledger,
                    std::set<std::string>* rejected, HunterReport* report) {
  const char* precision = sizeof(T) == 4 ? "float32" : "float64";
  std::ostringstream name;
  name << "log_transform[b" << base << "," << kernels::name(disp) << "]";
  const std::string key = triple_key(name.str(), precision, bound);

  auto data = make_edge_field<T>(family, config.max_points, seed);
  report->audits_run++;
  obs::counter_add("hunter.audits");

  kernels::ScopedDispatch sd(disp);
  TransformResult<T> tr;
  try {
    tr = log_forward<T>(std::span<const T>(data), bound, base);
  } catch (const ParamError& e) {
    record_rejection(key, e.what(), rejected, report);
    return;
  } catch (const std::exception& e) {
    HunterViolation v;
    v.scheme = name.str();
    v.family = edge_family_name(family);
    v.precision = precision;
    v.kind = "audit_forward_error";
    v.detail = std::string("log_forward threw: ") + e.what();
    v.bound = bound;
    v.seed = seed;
    obs::counter_add("hunter.violations");
    report->violations.push_back(std::move(v));
    return;
  }

  const double ba = tr.adjusted_abs_bound;
  std::vector<T> perturbed = tr.mapped;
  for (std::size_t i = 0; i < perturbed.size(); ++i) {
    // Zeros sit at the sentinel; pushing them *up* (toward the zero
    // threshold) is the adversarial direction. Nonzero points alternate.
    const bool up = data[i] == T{0} ? true : (i & 1) == 0;
    perturbed[i] = worst_legal<T>(perturbed[i], ba, up);
  }

  std::vector<T> rec;
  try {
    rec = log_inverse<T>(std::span<const T>(perturbed), tr.negative, base,
                         tr.zero_threshold);
  } catch (const std::exception& e) {
    HunterViolation v;
    v.scheme = name.str();
    v.family = edge_family_name(family);
    v.precision = precision;
    v.kind = "audit_inverse_error";
    v.detail = std::string("log_inverse threw: ") + e.what();
    v.bound = bound;
    v.seed = seed;
    obs::counter_add("hunter.violations");
    report->violations.push_back(std::move(v));
    return;
  }

  // Judged by the same envelope the transformed schemes advertise.
  auto viol = scan_points<T>(Scheme::kSzT, bound, std::span<const T>(data),
                             std::span<const T>(rec), key,
                             edge_family_name(family), ledger, report);
  if (!viol) return;

  obs::counter_add("hunter.violations");
  HunterViolation v;
  v.scheme = name.str();
  v.family = edge_family_name(family);
  v.precision = precision;
  v.kind = "audit_" + viol->kind;
  v.bound = bound;
  v.seed = seed;
  v.index = viol->index;
  {
    std::ostringstream os;
    os << viol->detail << " after +/-b'_a=" << ba << " perturbation ["
       << precision << ", base=" << base << ", " << kernels::name(disp)
       << ", bound=" << bound << ", seed=" << seed << "]";
    v.detail = os.str();
  }
  report->violations.push_back(std::move(v));
}

}  // namespace

// --- edge families -----------------------------------------------------------

const char* edge_family_name(EdgeFamily f) {
  switch (f) {
    case EdgeFamily::kDenormalBoundary:
      return "denormal_boundary";
    case EdgeFamily::kLogSingularity:
      return "log_singularity";
    case EdgeFamily::kMaxMagnitude:
      return "max_magnitude";
    case EdgeFamily::kExtremeDynamicRange:
      return "extreme_dynamic_range";
    case EdgeFamily::kUlpNeighbors:
      return "ulp_neighbors";
    case EdgeFamily::kZeroSentinelStress:
      return "zero_sentinel_stress";
  }
  return "unknown";
}

EdgeFamily edge_family_from_name(const std::string& name) {
  for (EdgeFamily f : kAllEdgeFamilies)
    if (name == edge_family_name(f)) return f;
  throw ParamError("unknown edge family: " + name);
}

std::span<const EdgeFamily> all_edge_families() { return kAllEdgeFamilies; }

template <typename T>
std::vector<T> make_edge_field(EdgeFamily family, std::size_t n,
                               std::uint64_t seed) {
  Rng rng(seed * 0x9e3779b97f4a7c15ULL +
          0x517cc1b727220a95ULL * (static_cast<std::uint64_t>(family) + 1));
  const T dmin = std::numeric_limits<T>::denorm_min();
  const T nmin = std::numeric_limits<T>::min();
  const T tmax = std::numeric_limits<T>::max();
  const int e_lo =
      std::numeric_limits<T>::min_exponent - std::numeric_limits<T>::digits;
  const int e_hi = std::numeric_limits<T>::max_exponent - 2;
  const int e_min_normal = std::numeric_limits<T>::min_exponent - 1;
  std::vector<T> out(n);

  switch (family) {
    case EdgeFamily::kDenormalBoundary: {
      // Ulp ladders straddling the subnormal/normal line, where the log
      // domain is steepest and reconstruction underflow bites first.
      const T anchors[4] = {dmin, static_cast<T>(nmin / 2), nmin,
                            static_cast<T>(nmin * 2)};
      for (auto& v : out) {
        T a = anchors[rng.below(4)];
        T m = walk_ulps<T>(a, static_cast<std::int64_t>(rng.below(8)) - 4);
        if (m == T{0}) m = dmin;  // stay nonzero; zeros live in other families
        v = rng.below(2) ? static_cast<T>(-m) : m;
      }
      break;
    }

    case EdgeFamily::kLogSingularity: {
      // +/- tiny magnitudes densely sign-alternating around zero, with
      // exact zeros (both signs) interleaved: worst case for the sign
      // bitmap and the zero sentinel at once.
      for (std::size_t i = 0; i < n; ++i) {
        if (i % 8 == 7) {
          out[i] = rng.below(2) ? static_cast<T>(-0.0) : T{0};
          continue;
        }
        int e = e_lo + static_cast<int>(
                           rng.below(static_cast<std::uint64_t>(
                               e_min_normal - e_lo + 11)));
        bool neg = (i & 1) != 0;
        if (rng.below(8) == 0) neg = !neg;
        out[i] = pow2_value<T>(e, 1.0 + rng.uniform(), neg);
      }
      break;
    }

    case EdgeFamily::kMaxMagnitude: {
      // FLT_MAX / DBL_MAX-adjacent: x * (1 + bound) overflows in exact
      // arithmetic, so reconstruction must saturate, not blow up.
      for (auto& v : out) {
        T m;
        switch (rng.below(4)) {
          case 0:
            m = walk_ulps<T>(tmax, -static_cast<std::int64_t>(rng.below(8)));
            break;
          case 1:
            m = static_cast<T>(tmax / 2);
            break;
          case 2:
            m = pow2_value<T>(e_hi - static_cast<int>(rng.below(4)),
                              1.0 + rng.uniform(), false);
            break;
          default:  // a few moderate values so the field is not all-huge
            m = static_cast<T>(1.0 + rng.uniform());
        }
        v = rng.below(2) ? static_cast<T>(-m) : m;
      }
      break;
    }

    case EdgeFamily::kExtremeDynamicRange: {
      // denorm_min .. near-max in one mixed-sign field: max |log x| is as
      // large as T allows, so Lemma 2's round-off guard is at its biggest.
      for (auto& v : out) {
        int e = e_lo + static_cast<int>(rng.below(
                           static_cast<std::uint64_t>(e_hi - e_lo + 1)));
        v = pow2_value<T>(e, 1.0 + rng.uniform(), rng.below(2) == 0);
      }
      if (n >= 2) {  // pin the extremes so every field truly spans the range
        out[0] = walk_ulps<T>(tmax, -1);
        out[1] = static_cast<T>(-dmin);
      }
      break;
    }

    case EdgeFamily::kUlpNeighbors: {
      // Ladders around 1, powers of two, and sqrt(2): where log rounding
      // crosses binade boundaries and quantizer bins straddle exact logs.
      for (auto& v : out) {
        T a;
        switch (rng.below(4)) {
          case 0:
            a = T{1};
            break;
          case 1:
            a = pow2_value<T>(static_cast<int>(rng.below(25)) - 12, 1.0,
                              false);
            break;
          case 2:
            a = static_cast<T>(std::sqrt(2.0));
            break;
          default:
            a = static_cast<T>(1.5);
        }
        T m = walk_ulps<T>(a, static_cast<std::int64_t>(rng.below(9)) - 4);
        v = rng.below(4) == 0 ? static_cast<T>(-m) : m;
      }
      break;
    }

    case EdgeFamily::kZeroSentinelStress: {
      // Exact zeros (both signs) interleaved with the smallest denormals:
      // the sentinel, the zero threshold, and real data all within a few
      // b'_a of each other in the log domain.
      for (auto& v : out) {
        switch (rng.below(4)) {
          case 0:
            v = T{0};
            break;
          case 1:
            v = static_cast<T>(-0.0);
            break;
          case 2: {
            T m = static_cast<T>(dmin * static_cast<T>(1 + rng.below(4)));
            v = rng.below(2) ? static_cast<T>(-m) : m;
            break;
          }
          default:
            v = pow2_value<T>(e_min_normal + static_cast<int>(rng.below(4)),
                              1.0 + rng.uniform(), rng.below(2) == 0);
        }
      }
      break;
    }
  }
  return out;
}

template std::vector<float> make_edge_field<float>(EdgeFamily, std::size_t,
                                                   std::uint64_t);
template std::vector<double> make_edge_field<double>(EdgeFamily, std::size_t,
                                                     std::uint64_t);

// --- minimization ------------------------------------------------------------

template <typename T>
std::vector<T> minimize_field(
    std::vector<T> field,
    const std::function<bool(std::span<const T>)>& still_violates,
    std::size_t budget) {
  std::size_t used = 0;
  auto check = [&](const std::vector<T>& f) {
    if (f.empty() || used >= budget) return false;
    ++used;
    try {
      return still_violates(std::span<const T>(f));
    } catch (...) {
      return false;
    }
  };

  // Phase 1: ddmin chunk removal, halving granularity until single
  // elements no longer come out.
  std::size_t granularity = 2;
  while (field.size() > 1 && used < budget) {
    const std::size_t chunk =
        std::max<std::size_t>(1, field.size() / granularity);
    bool removed_any = false;
    std::size_t start = 0;
    while (start < field.size() && used < budget) {
      const std::size_t stop = std::min(start + chunk, field.size());
      std::vector<T> candidate;
      candidate.reserve(field.size() - (stop - start));
      candidate.insert(candidate.end(), field.begin(),
                       field.begin() + static_cast<std::ptrdiff_t>(start));
      candidate.insert(candidate.end(),
                       field.begin() + static_cast<std::ptrdiff_t>(stop),
                       field.end());
      if (check(candidate)) {
        field = std::move(candidate);
        removed_any = true;  // keep start: the next chunk slid into place
      } else {
        start = stop;
      }
    }
    if (!removed_any) {
      if (chunk == 1) break;
      granularity *= 2;
    }
  }

  // Phase 2: simplify surviving elements toward 0 and 1 — a reproducer of
  // three "boring" values and one weird one points straight at the cause.
  for (std::size_t i = 0; i < field.size() && used < budget; ++i) {
    for (T cand : {T{0}, T{1}}) {
      if (field[i] == cand) continue;
      std::vector<T> trial = field;
      trial[i] = cand;
      if (check(trial)) {
        field[i] = cand;
        break;
      }
    }
  }
  return field;
}

template std::vector<float> minimize_field<float>(
    std::vector<float>, const std::function<bool(std::span<const float>)>&,
    std::size_t);
template std::vector<double> minimize_field<double>(
    std::vector<double>, const std::function<bool(std::span<const double>)>&,
    std::size_t);

// --- reproducers -------------------------------------------------------------

std::vector<std::uint8_t> encode_reproducer(const Reproducer& r) {
  ByteWriter w;
  w.put<std::uint32_t>(kReproMagic);
  w.put<std::uint8_t>(static_cast<std::uint8_t>(r.scheme));
  w.put<std::uint8_t>(static_cast<std::uint8_t>(r.dtype));
  w.put<double>(r.bound);
  w.put<std::uint64_t>(r.values.size());
  for (double v : r.values) w.put<double>(v);
  return w.take();
}

Reproducer decode_reproducer(std::span<const std::uint8_t> bytes) {
  ByteReader rd(bytes);
  if (rd.get<std::uint32_t>() != kReproMagic)
    throw StreamError("reproducer: bad magic (want THR1)");
  Reproducer r;
  const auto scheme = rd.get<std::uint8_t>();
  const auto dtype = rd.get<std::uint8_t>();
  if (scheme > static_cast<std::uint8_t>(Scheme::kSziT))
    throw StreamError("reproducer: unknown scheme id " +
                      std::to_string(scheme));
  if (dtype > 1)
    throw StreamError("reproducer: unknown dtype id " + std::to_string(dtype));
  r.scheme = static_cast<Scheme>(scheme);
  r.dtype = static_cast<DataType>(dtype);
  r.bound = rd.get<double>();
  if (!(std::isfinite(r.bound) && r.bound > 0))
    throw StreamError("reproducer: bound must be finite and positive");
  const std::uint64_t n = rd.get<std::uint64_t>();
  if (n == 0 || n > kReproMaxValues)
    throw StreamError("reproducer: element count " + std::to_string(n) +
                      " out of range");
  if (rd.remaining() != n * sizeof(double))
    throw StreamError("reproducer: payload size mismatch");
  r.values.resize(static_cast<std::size_t>(n));
  for (auto& v : r.values) v = rd.get<double>();
  return r;
}

namespace {

template <typename T>
std::string replay_typed(const Reproducer& r) {
  std::vector<T> data(r.values.size());
  for (std::size_t i = 0; i < data.size(); ++i)
    data[i] = static_cast<T>(r.values[i]);
  Dims dims(data.size());
  auto trip = round_trip<T>(r.scheme, r.bound, std::span<const T>(data), dims);
  // A clean ParamError refusal is a valid fix for a once-violating bound.
  if (trip.param_rejected) return "";
  if (!trip.error_kind.empty())
    return trip.error_kind + ": " + trip.error_detail;
  for (std::size_t i = 0; i < data.size(); ++i) {
    const double x = static_cast<double>(data[i]);
    const double y = static_cast<double>(trip.out[i]);
    std::ostringstream os;
    if (!std::isfinite(y)) {
      os << "finite input " << x << " decoded to non-finite " << y << " at "
         << i;
      return os.str();
    }
    const Envelope env = point_envelope<T>(r.scheme, r.bound, x);
    if (env.cls == PointClass::kExact && y != x) {
      os << "exact zero decoded to " << y << " at " << i;
      return os.str();
    }
    if (env.cls == PointClass::kBounded &&
        !(std::abs(y - x) <= env.allowed)) {
      os << "error " << std::abs(y - x) << " > allowed " << env.allowed
         << " (x=" << x << ", x'=" << y << ") at " << i;
      return os.str();
    }
  }
  return "";
}

}  // namespace

std::string replay_reproducer(const Reproducer& r) {
  if (r.values.empty()) return "";
  return r.dtype == DataType::kFloat32 ? replay_typed<float>(r)
                                       : replay_typed<double>(r);
}

// --- the hunt ----------------------------------------------------------------

std::string HunterReport::table() const {
  std::ostringstream os;
  os << "hunter: " << cases_run << " cases, " << points_checked
     << " points checked, " << audits_run << " ulp audits, "
     << clean_rejections << " clean rejections, " << violations.size()
     << " violations (seed=" << effective_seed << ")\n";

  if (!worst.empty()) {
    std::vector<WorstMargin> by_margin = worst;
    std::sort(by_margin.begin(), by_margin.end(),
              [](const WorstMargin& a, const WorstMargin& b) {
                return a.margin > b.margin;
              });
    os << "  worst margins (observed error / advertised envelope; > 1 "
          "violates):\n";
    for (std::size_t i = 0;
         i < std::min<std::size_t>(by_margin.size(), 12); ++i) {
      const auto& w = by_margin[i];
      os << "    " << w.key << ": " << w.margin << " at x=" << w.input
         << " -> " << w.output << " [" << w.family << "]\n";
    }
  }

  if (!rejections.empty()) {
    os << "  clean rejections (" << rejections.size() << " distinct triples, "
       << "first " << std::min<std::size_t>(rejections.size(), 8) << "):\n";
    for (std::size_t i = 0;
         i < std::min<std::size_t>(rejections.size(), 8); ++i)
      os << "    " << rejections[i].first << ": " << rejections[i].second
         << "\n";
  }

  if (!violations.empty()) {
    std::map<std::string, std::size_t> counts;
    for (const auto& v : violations) counts[v.scheme + " / " + v.kind]++;
    os << "  violations by scheme/kind:\n";
    for (const auto& [key, count] : counts)
      os << "    " << key << ": " << count << "\n";
    os << "  first findings:\n";
    for (std::size_t i = 0;
         i < std::min<std::size_t>(violations.size(), 10); ++i) {
      const auto& v = violations[i];
      os << "    [" << v.scheme << " / " << v.family << " / " << v.kind
         << "] " << v.detail;
      if (!v.reproducer.empty())
        os << " (minimized to " << v.reproducer.size() << " elements)";
      os << "\n";
    }
  }
  return os.str();
}

HunterReport run_hunt(const HunterConfig& config) {
  HunterReport report;
  const std::uint64_t base_seed = effective_seed(config.seed);
  report.effective_seed = base_seed;

  std::vector<Scheme> schemes = config.schemes;
  if (schemes.empty())
    schemes.assign(all_schemes().begin(), all_schemes().end());
  std::vector<EdgeFamily> families = config.families;
  if (families.empty())
    families.assign(all_edge_families().begin(), all_edge_families().end());

  std::map<std::string, WorstMargin> ledger;
  std::set<std::string> rejected;

  std::size_t variant = 0;
  for (std::size_t iter = 0; iter < std::max<std::size_t>(config.iters, 1);
       ++iter) {
    for (Scheme scheme : schemes) {
      for (EdgeFamily family : families) {
        std::size_t bound_idx = 0;
        for (double bound : config.bounds) {
          const std::uint64_t seed =
              base_seed + 1000003 * iter +
              17 * static_cast<std::uint64_t>(family) + 8191 * bound_idx++;
          run_hunter_case<float>(config, scheme, family, bound, seed,
                                 variant, &ledger, &rejected, &report);
          if (config.check_double)
            run_hunter_case<double>(config, scheme, family, bound, seed,
                                    variant, &ledger, &rejected, &report);
          variant++;
        }
      }
    }
  }

  if (config.ulp_audit) {
    static constexpr double kBases[] = {2.0, 10.0};
    static constexpr kernels::Dispatch kDispatches[] = {
        kernels::Dispatch::kGeneric, kernels::Dispatch::kNative};
    for (EdgeFamily family : families) {
      std::size_t bound_idx = 0;
      for (double bound : config.bounds) {
        const std::uint64_t seed =
            (base_seed ^ 0xa0d17ULL) +
            131 * static_cast<std::uint64_t>(family) + 8191 * bound_idx++;
        for (double base : kBases) {
          for (kernels::Dispatch disp : kDispatches) {
            run_audit_case<float>(config, family, bound, base, disp, seed,
                                  &ledger, &rejected, &report);
            if (config.check_double)
              run_audit_case<double>(config, family, bound, base, disp, seed,
                                     &ledger, &rejected, &report);
          }
        }
      }
    }
  }

  report.worst.reserve(ledger.size());
  for (auto& [key, wm] : ledger) report.worst.push_back(wm);
  obs::counter_add("hunter.points", report.points_checked);
  return report;
}

}  // namespace testing
}  // namespace transpwr

#ifndef TRANSPWR_TESTING_TEMP_FILE_H
#define TRANSPWR_TESTING_TEMP_FILE_H

#include <cerrno>
#include <cstdint>
#include <cstdlib>
#include <span>
#include <string>

#include <unistd.h>

#include "common/error.h"

namespace transpwr {
namespace testing {

/// RAII scratch file: materializes a byte span under /tmp so the
/// fuzz/corpus replays can drive the mmap-backed archive reader with the
/// same mutated streams the in-memory reader sees. Unlinked on scope exit.
class TempFile {
 public:
  explicit TempFile(std::span<const std::uint8_t> bytes) {
    char name[] = "/tmp/transpwr_scratch_XXXXXX";
    int fd = ::mkstemp(name);
    if (fd < 0) throw StreamError("temp file: mkstemp failed");
    path_ = name;
    std::size_t off = 0;
    while (off < bytes.size()) {
      ssize_t n = ::write(fd, bytes.data() + off, bytes.size() - off);
      if (n < 0) {
        if (errno == EINTR) continue;
        ::close(fd);
        ::unlink(name);
        throw StreamError("temp file: write failed");
      }
      off += static_cast<std::size_t>(n);
    }
    ::close(fd);
  }
  ~TempFile() { ::unlink(path_.c_str()); }
  TempFile(const TempFile&) = delete;
  TempFile& operator=(const TempFile&) = delete;

  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

}  // namespace testing
}  // namespace transpwr

#endif  // TRANSPWR_TESTING_TEMP_FILE_H

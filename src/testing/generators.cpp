#include "testing/generators.h"

#include <array>
#include <cmath>
#include <limits>

#include "common/env.h"
#include "common/error.h"
#include "common/rng.h"

namespace transpwr {
namespace testing {
namespace {

constexpr std::array<Family, 12> kAllFamilies = {
    Family::kRandomSmooth,  Family::kDenormals,    Family::kNearZero,
    Family::kSignedZeros,   Family::kSignAlternating,
    Family::kConstantSlabs, Family::kExponentRamp, Family::kHeavyTail,
    Family::kSparseZeros,   Family::kTinyValuesMix,
    Family::kNanLaced,      Family::kInfLaced};

constexpr std::size_t kNumFinite = 10;  // kAllFamilies[0..9]

/// Smooth correlated walk: an AR(1) process over a few decades of
/// magnitude, the "friendly" baseline the adversarial families perturb.
template <typename T>
std::vector<T> smooth(std::size_t n, Rng& rng, double scale) {
  std::vector<T> out(n);
  double v = rng.uniform(-1.0, 1.0) * scale;
  for (std::size_t i = 0; i < n; ++i) {
    v = 0.95 * v + 0.05 * scale * rng.normal();
    out[i] = static_cast<T>(v);
  }
  return out;
}

/// Magnitude 2^e * m with m in [1, 2), cast-safe for T by construction.
template <typename T>
T pow2_value(int e, double mantissa, bool negative) {
  double v = std::ldexp(mantissa, e);
  if (negative) v = -v;
  return static_cast<T>(v);
}

/// Exponent range that T can represent, subnormals included.
template <typename T>
void exponent_range(int* lo, int* hi) {
  *lo = std::numeric_limits<T>::min_exponent -
        std::numeric_limits<T>::digits;  // smallest subnormal
  *hi = std::numeric_limits<T>::max_exponent - 2;  // 2^hi * m stays finite
}

}  // namespace

const char* family_name(Family f) {
  switch (f) {
    case Family::kRandomSmooth:
      return "random_smooth";
    case Family::kDenormals:
      return "denormals";
    case Family::kNearZero:
      return "near_zero";
    case Family::kSignedZeros:
      return "signed_zeros";
    case Family::kSignAlternating:
      return "sign_alternating";
    case Family::kConstantSlabs:
      return "constant_slabs";
    case Family::kExponentRamp:
      return "exponent_ramp";
    case Family::kHeavyTail:
      return "heavy_tail";
    case Family::kSparseZeros:
      return "sparse_zeros";
    case Family::kTinyValuesMix:
      return "tiny_values_mix";
    case Family::kNanLaced:
      return "nan_laced";
    case Family::kInfLaced:
      return "inf_laced";
  }
  return "unknown";
}

Family family_from_name(const std::string& name) {
  for (Family f : kAllFamilies)
    if (name == family_name(f)) return f;
  throw ParamError("unknown adversarial family: " + name);
}

std::span<const Family> all_families() { return kAllFamilies; }

std::span<const Family> finite_families() {
  return {kAllFamilies.data(), kNumFinite};
}

bool family_is_finite(Family f) {
  return f != Family::kNanLaced && f != Family::kInfLaced;
}

template <typename T>
std::vector<T> make_field(Family family, std::size_t n, std::uint64_t seed) {
  // Fold the family into the seed so two families never share a stream.
  Rng rng(seed * 0x9e3779b97f4a7c15ULL + static_cast<std::uint64_t>(family));
  int e_lo = 0, e_hi = 0;
  exponent_range<T>(&e_lo, &e_hi);
  const int e_min_normal = std::numeric_limits<T>::min_exponent - 1;

  switch (family) {
    case Family::kRandomSmooth:
      return smooth<T>(n, rng, 100.0);

    case Family::kDenormals: {
      // Everything at or below the normal/subnormal boundary.
      std::vector<T> out(n);
      for (auto& v : out) {
        int e = e_lo + static_cast<int>(rng.below(
                           static_cast<std::uint64_t>(e_min_normal - e_lo + 2)));
        v = pow2_value<T>(e, 1.0 + rng.uniform(), rng.below(2) == 0);
      }
      return out;
    }

    case Family::kNearZero: {
      // A tight band around the smallest normal magnitude.
      std::vector<T> out(n);
      for (auto& v : out) {
        int e = e_min_normal - 2 + static_cast<int>(rng.below(5));
        v = pow2_value<T>(e, 1.0 + rng.uniform(), rng.below(2) == 0);
      }
      return out;
    }

    case Family::kSignedZeros: {
      auto out = smooth<T>(n, rng, 1.0);
      for (auto& v : out) {
        std::uint64_t roll = rng.below(4);
        if (roll == 0) v = T{0};
        if (roll == 1) v = -T{0};
      }
      return out;
    }

    case Family::kSignAlternating: {
      auto out = smooth<T>(n, rng, 10.0);
      for (std::size_t i = 0; i < n; ++i) {
        T m = out[i] < T{0} ? static_cast<T>(-out[i]) : out[i];
        out[i] = (i & 1) ? static_cast<T>(-m) : m;
      }
      return out;
    }

    case Family::kConstantSlabs: {
      std::vector<T> out(n);
      std::size_t i = 0;
      while (i < n) {
        std::size_t run = 1 + rng.below(n);  // occasionally the whole field
        T v = static_cast<T>(rng.uniform(-1e3, 1e3));
        for (; run && i < n; --run, ++i) out[i] = v;
      }
      return out;
    }

    case Family::kExponentRamp: {
      // Deterministic sweep across every representable binade, subnormals
      // through near-overflow, with a random mantissa per point.
      std::vector<T> out(n);
      const int span = e_hi - e_lo + 1;
      for (std::size_t i = 0; i < n; ++i) {
        int e = e_lo + static_cast<int>(i % static_cast<std::size_t>(span));
        out[i] = pow2_value<T>(e, 1.0 + rng.uniform(), rng.below(2) == 0);
      }
      return out;
    }

    case Family::kHeavyTail: {
      std::vector<T> out(n);
      const int half = (e_hi - e_lo) / 4;
      for (auto& v : out) {
        int e = static_cast<int>(rng.normal() * half / 3.0);
        e = std::max(e_lo, std::min(e_hi, e));
        v = pow2_value<T>(e, 1.0 + rng.uniform(), rng.below(2) == 0);
      }
      return out;
    }

    case Family::kSparseZeros: {
      auto out = smooth<T>(n, rng, 50.0);
      for (auto& v : out)
        if (rng.below(16) == 0) v = T{0};
      return out;
    }

    case Family::kTinyValuesMix: {
      std::vector<T> out(n);
      for (auto& v : out) {
        switch (rng.below(4)) {
          case 0:
            v = T{0};
            break;
          case 1: {  // subnormal
            int e = e_lo + static_cast<int>(rng.below(
                               static_cast<std::uint64_t>(
                                   e_min_normal - e_lo)));
            v = pow2_value<T>(e, 1.0 + rng.uniform(), rng.below(2) == 0);
            break;
          }
          case 2:  // around 1
            v = static_cast<T>(rng.uniform(-2.0, 2.0));
            break;
          default:  // large
            v = pow2_value<T>(e_hi - static_cast<int>(rng.below(8)),
                              1.0 + rng.uniform(), rng.below(2) == 0);
        }
      }
      return out;
    }

    case Family::kNanLaced: {
      auto out = smooth<T>(n, rng, 10.0);
      for (auto& v : out)
        if (rng.below(8) == 0) v = std::numeric_limits<T>::quiet_NaN();
      if (!out.empty()) out[0] = std::numeric_limits<T>::quiet_NaN();
      return out;
    }

    case Family::kInfLaced: {
      auto out = smooth<T>(n, rng, 10.0);
      for (auto& v : out)
        if (rng.below(8) == 0)
          v = rng.below(2) ? std::numeric_limits<T>::infinity()
                           : -std::numeric_limits<T>::infinity();
      if (!out.empty()) out[0] = std::numeric_limits<T>::infinity();
      return out;
    }
  }
  throw ParamError("make_field: unknown family");
}

template std::vector<float> make_field<float>(Family, std::size_t,
                                              std::uint64_t);
template std::vector<double> make_field<double>(Family, std::size_t,
                                                std::uint64_t);

std::uint64_t effective_seed(std::uint64_t fallback) {
  env::U64Range any;
  any.min = 0;
  return env::checked_u64("TRANSPWR_SEED", any).value_or(fallback);
}

}  // namespace testing
}  // namespace transpwr

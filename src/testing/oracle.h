#ifndef TRANSPWR_TESTING_ORACLE_H
#define TRANSPWR_TESTING_ORACLE_H

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/compressor.h"
#include "fpzip/fpzip.h"

namespace transpwr {
namespace testing {

/// The per-point guarantee oracle shared by the conformance harness and the
/// adversarial bound-violation hunter. Both must judge a round trip by the
/// *same* advertised contract, so the classification of each scheme and the
/// error envelope it is allowed live here rather than in either checker.

/// What a scheme promises for finite inputs.
enum class Guarantee {
  kAbsolute,         // |x' - x| <= bound                       (SZ_ABS)
  kRelative,         // |x' - x| <= bound * |x|, zeros exact    (the PWR codecs)
  kRelativeNonzero,  // relative bound at nonzero points only   (SZ_PWR)
  kNone,             // finite output + shape only              (ZFP_P)
};

inline Guarantee guarantee_of(Scheme s) {
  switch (s) {
    case Scheme::kSzAbs:
      return Guarantee::kAbsolute;
    case Scheme::kSzPwr:
      return Guarantee::kRelativeNonzero;
    case Scheme::kZfpP:
      return Guarantee::kNone;
    case Scheme::kSzT:
    case Scheme::kZfpT:
    case Scheme::kFpzip:
    case Scheme::kIsabela:
    case Scheme::kSziT:
      return Guarantee::kRelative;
  }
  return Guarantee::kNone;
}

/// Schemes that preserve NaN/Inf bit patterns through outlier storage.
inline bool preserves_nonfinite(Scheme s) {
  return s == Scheme::kSzAbs || s == Scheme::kSzPwr;
}

/// One ulp of T at magnitude |x|: the irreducible representability error
/// any codec that returns T values pays. Added as slack for the schemes
/// whose guarantee comes from real-analysis bounds (the log-transformed
/// family), where the final store to T rounds once more. For subnormal
/// outputs this dominates the relative bound, honestly: no T-valued codec
/// can do better there.
template <typename T>
double ulp_at(double magnitude) {
  T t = static_cast<T>(std::min(
      magnitude, static_cast<double>(std::numeric_limits<T>::max())));
  T up = std::nextafter(t, std::numeric_limits<T>::infinity());
  if (!std::isfinite(static_cast<double>(up)))
    return static_cast<double>(t) -
           static_cast<double>(
               std::nextafter(t, -std::numeric_limits<T>::infinity()));
  return static_cast<double>(up) - static_cast<double>(t);
}

/// The relative bound FPZIP can actually deliver for `requested`: its
/// precision parameter truncates mantissa bits, so the effective bound is
/// quantized to the next power of two (and floored at full precision).
template <typename T>
double fpzip_effective_bound(double requested) {
  double eff = fpzip::max_rel_error_for_precision<T>(
      fpzip::precision_for_rel_bound<T>(requested));
  return std::max(requested, eff);
}

/// How one finite input point is covered by a scheme's guarantee.
enum class PointClass {
  kExact,      // the decoded value must equal the input exactly (zeros)
  kBounded,    // |x' - x| <= Envelope::allowed
  kUnchecked,  // no per-point promise (ZFP_P, SZ_PWR zeros, FPZIP subnormals)
};

struct Envelope {
  PointClass cls = PointClass::kUnchecked;
  double allowed = 0;  ///< meaningful only for kBounded
};

/// The advertised error envelope of `scheme` at finite input `x` with the
/// user-requested `bound`. This is the contract docs/guarantees.md spells
/// out, asserted exclusions included:
///   - relative schemes get 2 ulps of representability slack at the
///     reconstructed magnitude (so flushing |x| <= ~2 ulps of zero — the
///     very smallest denormals — is within contract);
///   - FPZIP is judged against the effective bound its precision
///     quantization can honor, and subnormal inputs are exempt;
///   - SZ_PWR guarantees nothing at exact zeros, ZFP_P nothing anywhere.
template <typename T>
Envelope point_envelope(Scheme scheme, double bound, double x) {
  switch (guarantee_of(scheme)) {
    case Guarantee::kAbsolute:
      return {PointClass::kBounded, bound};
    case Guarantee::kNone:
      return {PointClass::kUnchecked, 0};
    case Guarantee::kRelativeNonzero: {
      if (x == 0.0) return {PointClass::kUnchecked, 0};
      const double allowed =
          bound * std::abs(x) + 2.0 * ulp_at<T>(std::abs(x) * (1 + bound));
      return {PointClass::kBounded, allowed};
    }
    case Guarantee::kRelative: {
      if (x == 0.0) return {PointClass::kExact, 0};
      double rel = bound;
      if (scheme == Scheme::kFpzip) {
        // FPZIP truncates mantissas, which loses whole bits once the
        // result underflows to subnormal; only normal-range values carry
        // its guarantee.
        if (std::abs(x) < static_cast<double>(std::numeric_limits<T>::min()))
          return {PointClass::kUnchecked, 0};
        rel = fpzip_effective_bound<T>(bound);
      }
      const double allowed =
          rel * std::abs(x) + 2.0 * ulp_at<T>(std::abs(x) * (1 + rel));
      return {PointClass::kBounded, allowed};
    }
  }
  return {PointClass::kUnchecked, 0};
}

}  // namespace testing
}  // namespace transpwr

#endif  // TRANSPWR_TESTING_ORACLE_H

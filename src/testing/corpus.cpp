#include "testing/corpus.h"

#include <cstring>
#include <stdexcept>

#include "common/bitstream.h"
#include "common/checksum.h"
#include "common/error.h"
#include "core/compressor.h"
#include "core/transformed.h"
#include "data/io.h"
#include "fpzip/fpzip.h"
#include "isabela/isabela.h"
#include "lossless/lossless.h"
#include "lossless/lz77.h"
#include "lossless/rle.h"
#include "parallel/chunked.h"
#include "store/archive.h"
#include "store/chunk_cache.h"
#include "sz/interp.h"
#include "sz/sz.h"
#include "testing/generators.h"
#include "testing/temp_file.h"
#include "zfp/zfp.h"

namespace transpwr {
namespace testing {
namespace {

constexpr std::uint64_t kCorpusSeed = 7;

std::vector<float> base_field(std::size_t n) {
  return make_field<float>(Family::kRandomSmooth, n, kCorpusSeed);
}

void patch(std::vector<std::uint8_t>& s, std::size_t off,
           std::initializer_list<std::uint8_t> bytes) {
  if (off + bytes.size() > s.size())
    throw std::logic_error("corpus: patch past end of stream");
  std::size_t i = off;
  for (std::uint8_t b : bytes) s[i++] = b;
}

void patch_u64(std::vector<std::uint8_t>& s, std::size_t off,
               std::uint64_t v) {
  if (off + 8 > s.size())
    throw std::logic_error("corpus: patch past end of stream");
  std::memcpy(s.data() + off, &v, 8);
}

void patch_f64(std::vector<std::uint8_t>& s, std::size_t off, double v) {
  if (off + 8 > s.size())
    throw std::logic_error("corpus: patch past end of stream");
  std::memcpy(s.data() + off, &v, 8);
}

bool starts_with(const std::string& name, const char* prefix) {
  return name.rfind(prefix, 0) == 0;
}

/// The raw (unverified) case list. Offsets follow each codec's fixed
/// header layout: 4-byte magic, then the byte fields, then 3 x u64 dims,
/// then the stream parameters.
std::vector<CorpusCase> build_cases() {
  std::vector<CorpusCase> cases;
  Dims d1;
  d1.nd = 1;
  d1.d[0] = 64;
  auto field = base_field(64);

  {  // lz77: first 64 bits are the declared output size.
    auto s = lz77::compress(
        std::vector<std::uint8_t>{1, 2, 3, 1, 2, 3, 1, 2, 3, 4});
    patch_u64(s, 0, ~std::uint64_t{0});
    cases.push_back({"lz77_huge_declared_size", std::move(s)});
  }
  {  // lossless: 1-byte method tag.
    auto s = lossless::compress(std::vector<std::uint8_t>(100, 7));
    patch(s, 0, {0xff});
    cases.push_back({"lossless_bad_method_tag", std::move(s)});
  }
  {  // rle: the bit count is the first 64 bits.
    BitWriter bw;
    bw.write_bits(std::uint64_t{1} << 40, 64);
    cases.push_back({"rle_huge_bit_count", bw.take()});
  }
  {  // sz header: mode byte at 6, dims at 9, block_edge u32 at 45.
    sz::Params p;
    auto s = sz::compress<float>(field, d1, p);
    auto bad_mode = s;
    patch(bad_mode, 6, {0xff});
    cases.push_back({"sz_bad_mode_byte", std::move(bad_mode)});
    auto bad_dims = s;
    patch_u64(bad_dims, 9, ~std::uint64_t{0});
    cases.push_back({"sz_dims_overflow", std::move(bad_dims)});
  }
  {  // sz PWR mode: block_edge == 0 would divide by zero in Geometry.
    sz::Params p;
    p.mode = sz::Mode::kPwrBlock;
    auto s = sz::compress<float>(field, d1, p);
    patch(s, 45, {0, 0, 0, 0});
    cases.push_back({"sz_pwr_zero_block_edge", std::move(s)});
  }
  {  // sz_interp header: dims at 8.
    sz_interp::Params p;
    auto s = sz_interp::compress<float>(field, d1, p);
    patch_u64(s, 8, ~std::uint64_t{0});
    cases.push_back({"szinterp_dims_overflow", std::move(s)});
  }
  {  // zfp header: mode byte at 6, tolerance double at 32.
    zfp::Params p;
    auto s = zfp::compress<float>(field, d1, p);
    auto bad_mode = s;
    patch(bad_mode, 6, {0xff});
    cases.push_back({"zfp_bad_mode_byte", std::move(bad_mode)});
    auto bad_tol = s;
    patch_f64(bad_tol, 32, -1.0);
    cases.push_back({"zfp_negative_tolerance", std::move(bad_tol)});
  }
  {  // fpzip header: entropy byte at 6.
    fpzip::Params p;
    auto s = fpzip::compress<float>(field, d1, p);
    patch(s, 6, {0xff});
    cases.push_back({"fpzip_bad_entropy_byte", std::move(s)});
  }
  {  // isabela header: fit byte at 6, window u32 at 40.
    isabela::Params p;
    auto s = isabela::compress<float>(field, d1, p);
    auto bad_fit = s;
    patch(bad_fit, 6, {0xff});
    cases.push_back({"isabela_bad_fit_byte", std::move(bad_fit)});
    auto zero_window = s;
    patch(zero_window, 40, {0, 0, 0, 0});
    cases.push_back({"isabela_zero_window", std::move(zero_window)});
  }
  {  // isabela: decompressed outlier section that is not a whole number
     // of elements. Regression for a fuzz finding: the decoder sized the
     // outlier vector as bytes/sizeof(T) (rounding down) but memcpy'd the
     // full byte count, writing past the vector (through nullptr when the
     // section shrank below one element).
    isabela::Params p;
    auto s = isabela::compress<float>(field, d1, p);
    // Walk the three leading sized sections (permutation bits, controls,
    // codes) to reach the trailing outlier section, then replace it with
    // a 3-byte payload.
    std::size_t off = 48;  // fixed header: magic..control_every
    for (int sec = 0; sec < 3; ++sec) {
      if (off + 8 > s.size())
        throw std::logic_error("corpus: isabela section walk past end");
      std::uint64_t len;
      std::memcpy(&len, s.data() + off, 8);
      off += 8 + static_cast<std::size_t>(len);
    }
    if (off > s.size())
      throw std::logic_error("corpus: isabela section walk past end");
    s.resize(off);
    auto blob = lossless::compress(std::vector<std::uint8_t>{1, 2, 3});
    std::uint64_t blen = blob.size();
    std::uint8_t lenb[8];
    std::memcpy(lenb, &blen, 8);
    s.insert(s.end(), lenb, lenb + 8);
    s.insert(s.end(), blob.begin(), blob.end());
    cases.push_back({"isabela_truncated_outliers", std::move(s)});
  }
  {  // transformed header: inner codec byte at 5, log base double at 8.
    TransformedParams p;
    auto s = transformed_compress<float>(field, d1, InnerCodec::kSz, p);
    auto bad_codec = s;
    patch(bad_codec, 5, {0xff});
    cases.push_back({"transformed_bad_codec_byte", std::move(bad_codec)});
    auto bad_base = s;
    patch_f64(bad_base, 8, 0.5);
    cases.push_back({"transformed_bad_log_base", std::move(bad_base)});
  }
  {  // chunked header: scheme byte at 5, first slab row count u64 at 36.
    chunked::Params p;
    p.scheme = Scheme::kSzAbs;
    p.num_chunks = 2;
    p.threads = 1;
    Dims d2;
    d2.nd = 2;
    d2.d[0] = 16;
    d2.d[1] = 4;
    auto data = base_field(64);
    auto s = chunked::compress<float>(data, d2, p);
    auto bad_scheme = s;
    patch(bad_scheme, 5, {0xff});
    cases.push_back({"chunked_bad_scheme_byte", std::move(bad_scheme)});
    auto bad_rows = s;
    patch_u64(bad_rows, 36, ~std::uint64_t{0});
    cases.push_back({"chunked_slab_rows_overflow", std::move(bad_rows)});
  }
  {  // archive trailer: footer_fnv u64 at size-20, footer_size u64 at
     // size-12, end magic u32 at size-4; payload starts at byte 8.
    std::vector<std::uint8_t> s;
    {
      store::ArchiveWriter w(&s);
      store::DatasetOptions opts;
      opts.scheme = Scheme::kSzAbs;
      opts.params.bound = 1e-2;
      opts.rows_per_chunk = 24;
      opts.threads = 1;
      w.add_dataset<float>("field", field, d1, opts);
      w.finish();
    }
    auto huge_footer = s;
    patch_u64(huge_footer, huge_footer.size() - 12, ~std::uint64_t{0});
    cases.push_back({"archive_footer_size_overflow", std::move(huge_footer)});
    auto bad_end = s;
    patch(bad_end, bad_end.size() - 4, {0xde, 0xad, 0xbe, 0xef});
    cases.push_back({"archive_bad_end_magic", std::move(bad_end)});
    auto flipped_payload = s;
    flipped_payload[8] ^= 0x01;  // first payload byte of the first chunk
    cases.push_back({"archive_payload_bit_flip", std::move(flipped_payload)});
    auto lazy_chunk = s;
    {
      // Flip a payload byte of the *second* chunk: head, directory, and
      // trailer stay intact, so the archive opens (and mmaps) fine — only
      // the lazy first-touch verification of that chunk can reject it.
      auto chunks = store::ArchiveReader(std::span<const std::uint8_t>(s))
                        .dataset("field")
                        .chunks;
      lazy_chunk[static_cast<std::size_t>(chunks.at(1).offset)] ^= 0x10;
    }
    cases.push_back({"archive_lazy_verify_chunk", std::move(lazy_chunk)});
  }
  {  // TPAR v2 summary blocks: semantic nonsense behind a *valid* footer
     // checksum. The trailer FNV is re-sealed after each patch, so only
     // the parser's summary validation can reject these — coverage the
     // plain bit-flip cases (caught by the FNV) cannot give.
    std::vector<std::uint8_t> s;
    {
      store::ArchiveWriter w(&s);
      store::DatasetOptions opts;
      opts.scheme = Scheme::kSzAbs;
      opts.params.bound = 1e-2;
      opts.rows_per_chunk = 24;  // chunks of 24, 24, 16 rows
      opts.threads = 1;
      w.add_dataset<float>("field", field, d1, opts);
      w.finish();
    }
    const std::size_t nchunks =
        store::ArchiveReader(std::span<const std::uint8_t>(s))
            .dataset("field")
            .chunks.size();
    // The single dataset's summary section ends the footer: one 184-byte
    // block per chunk (min@0 max@8 sum@16 finite@24 nan@32 pos_inf@40
    // neg_inf@48 hist@56).
    const std::size_t block0 = s.size() - 20 - nchunks * 184;
    auto resealed = [](std::vector<std::uint8_t> t) {
      std::uint64_t footer_size = 0;
      std::memcpy(&footer_size, t.data() + t.size() - 12, 8);
      const std::size_t start =
          t.size() - 20 - static_cast<std::size_t>(footer_size);
      patch_u64(t, t.size() - 20,
                fnv1a64({t.data() + start,
                         static_cast<std::size_t>(footer_size)}));
      return t;
    };
    // Sanity: re-sealing the pristine footer must keep it openable,
    // proving the cases below are rejected by validation, not the FNV.
    {
      auto clean = resealed(s);
      store::ArchiveReader check{std::span<const std::uint8_t>(clean)};
      if (!check.dataset("field").has_summaries())
        throw std::logic_error("corpus: resealed archive lost summaries");
    }
    auto count_mismatch = s;
    // finite = 999 cannot tally with a 24-element chunk.
    patch_u64(count_mismatch, block0 + 24, 999);
    cases.push_back({"archive_summary_count_mismatch",
                     resealed(std::move(count_mismatch))});
    auto minmax_invalid = s;
    // min far above max: impossible attained extrema.
    patch_f64(minmax_invalid, block0 + 0, 1e30);
    cases.push_back({"archive_summary_minmax_invalid",
                     resealed(std::move(minmax_invalid))});
  }
  return cases;
}

}  // namespace

void decode_corpus_stream(const std::string& name,
                          std::span<const std::uint8_t> stream) {
  if (starts_with(name, "lz77_")) {
    lz77::decompress(stream);
  } else if (starts_with(name, "lossless_")) {
    lossless::decompress(stream);
  } else if (starts_with(name, "rle_")) {
    BitReader br(stream);
    rle::decode_bits(br);
  } else if (starts_with(name, "szinterp_")) {
    sz_interp::decompress<float>(stream);
  } else if (starts_with(name, "sz_")) {
    sz::decompress<float>(stream);
  } else if (starts_with(name, "zfp_")) {
    zfp::decompress<float>(stream);
  } else if (starts_with(name, "fpzip_")) {
    fpzip::decompress<float>(stream);
  } else if (starts_with(name, "isabela_")) {
    isabela::decompress<float>(stream);
  } else if (starts_with(name, "transformed_")) {
    transformed_decompress<float>(stream);
  } else if (starts_with(name, "chunked_")) {
    chunked::decompress<float>(stream, nullptr, 1);
  } else if (starts_with(name, "archive_")) {
    auto replay = [](store::ArchiveReader& reader) {
      // Loads before verify(): payload corruption inside an archive that
      // opens fine must be caught by the lazy first-touch checksum, not
      // only by the eager scan.
      for (const auto& ds : reader.datasets())
        reader.load<float>(ds.name, nullptr, 1);
      reader.verify();
    };
    store::ScopedCacheCapacity no_cache(0);
    {
      // The mmap open/parse path sees every case first...
      TempFile tmp(stream);
      store::ArchiveReader reader(tmp.path());
      replay(reader);
    }
    // ...and the in-memory view reader must reject it the same way.
    store::ArchiveReader reader(stream);
    replay(reader);
  } else {
    throw std::logic_error("corpus: no decoder for case " + name);
  }
}

std::vector<CorpusCase> regression_corpus() {
  auto cases = build_cases();
  // Self-check: every case must be rejected with a clean transpwr::Error.
  // A case that decodes, or that escapes with a foreign exception, means
  // its patch offset drifted from the header layout — fail loudly.
  for (const auto& c : cases) {
    try {
      decode_corpus_stream(c.name, c.stream);
      throw std::logic_error("corpus case decoded cleanly: " + c.name);
    } catch (const Error&) {
      // expected
    }
  }
  return cases;
}

void emit_corpus(const std::string& dir) {
  for (const auto& c : regression_corpus())
    io::write_bytes(dir + "/" + c.name + ".bin", c.stream);
}

}  // namespace testing
}  // namespace transpwr

#ifndef TRANSPWR_LOSSLESS_RLE_H
#define TRANSPWR_LOSSLESS_RLE_H

#include <cstdint>
#include <vector>

#include "common/bitstream.h"

namespace transpwr {
namespace rle {

/// Run-length code a bit vector (e.g. a sign bitmap) as alternating-run
/// Elias-gamma lengths. Dense same-sign regions — the common case in
/// scientific fields — collapse to a few bits.
inline void encode_bits(const std::vector<bool>& bits, BitWriter& bw) {
  bw.write_bits(bits.size(), 64);
  if (bits.empty()) return;
  bool cur = bits[0];
  bw.write_bit(cur);
  std::size_t i = 0;
  while (i < bits.size()) {
    std::size_t run = 1;
    while (i + run < bits.size() && bits[i + run] == cur) ++run;
    // Elias gamma of `run` (run >= 1).
    unsigned nbits = 0;
    for (std::size_t v = run; v > 1; v >>= 1) ++nbits;
    bw.write_bits(0, nbits);      // nbits zeros
    bw.write_bit(true);           // stop bit = MSB of run
    bw.write_bits(run, nbits);    // low bits of run (LSB-first)
    i += run;
    cur = !cur;
  }
}

inline std::vector<bool> decode_bits(BitReader& br) {
  auto n = static_cast<std::size_t>(br.read_bits(64));
  std::vector<bool> bits;
  bits.reserve(n);
  if (n == 0) return bits;
  bool cur = br.read_bit();
  while (bits.size() < n) {
    unsigned nbits = 0;
    while (!br.read_bit()) ++nbits;
    std::size_t run = (std::size_t{1} << nbits) | br.read_bits(nbits);
    for (std::size_t j = 0; j < run && bits.size() < n; ++j)
      bits.push_back(cur);
    cur = !cur;
  }
  return bits;
}

}  // namespace rle
}  // namespace transpwr

#endif  // TRANSPWR_LOSSLESS_RLE_H

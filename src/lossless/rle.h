#ifndef TRANSPWR_LOSSLESS_RLE_H
#define TRANSPWR_LOSSLESS_RLE_H

#include <cstdint>

#include "common/bitmap.h"
#include "common/bitstream.h"
#include "common/decode_guard.h"
#include "common/error.h"

namespace transpwr {
namespace rle {

/// Length of the run of bits equal to bits[i] starting at i, found by
/// word-level scanning: a whole word equal to the run's fill pattern is
/// skipped in one comparison, so dense same-sign fields scan at 64
/// bits/step instead of 1.
inline std::size_t run_length(const Bitmap& bits, std::size_t i) {
  const std::size_t n = bits.size();
  const bool cur = bits[i];
  std::size_t j = i + 1;
  while (j < n && (j % Bitmap::kWordBits) != 0) {
    if (bits[j] != cur) return j - i;
    ++j;
  }
  const std::uint64_t fill = cur ? ~std::uint64_t{0} : std::uint64_t{0};
  auto words = bits.words();
  while (j + Bitmap::kWordBits <= n && words[j / Bitmap::kWordBits] == fill)
    j += Bitmap::kWordBits;
  while (j < n && bits[j] == cur) ++j;
  return j - i;
}

/// Run-length code a bit vector (e.g. a sign bitmap) as alternating-run
/// Elias-gamma lengths. Dense same-sign regions — the common case in
/// scientific fields — collapse to a few bits. The stream format is
/// unchanged from the std::vector<bool> era.
inline void encode_bits(const Bitmap& bits, BitWriter& bw) {
  bw.write_bits(bits.size(), 64);
  if (bits.empty()) return;
  bw.write_bit(bits[0]);
  std::size_t i = 0;
  while (i < bits.size()) {
    std::size_t run = run_length(bits, i);
    // Elias gamma of `run` (run >= 1).
    unsigned nbits = 0;
    for (std::size_t v = run; v > 1; v >>= 1) ++nbits;
    bw.write_bits(0, nbits);      // nbits zeros
    bw.write_bit(true);           // stop bit = MSB of run
    bw.write_bits(run, nbits);    // low bits of run (LSB-first)
    i += run;
  }
}

inline Bitmap decode_bits(BitReader& br) {
  auto n = static_cast<std::size_t>(br.read_bits(64));
  check_decode_alloc(n / 8 + 1, 1, "rle");
  Bitmap bits;
  if (n == 0) return bits;
  bits.resize(n);
  bool cur = br.read_bit();
  std::size_t at = 0;
  while (at < n) {
    unsigned nbits = 0;
    while (!br.read_bit()) ++nbits;
    // A gamma prefix of >= 64 zeros cannot come from the encoder (runs fit
    // in size_t) and would shift past the 64-bit accumulator below.
    if (nbits >= 64) throw StreamError("rle: gamma run length overflow");
    std::size_t run = (std::size_t{1} << nbits) | br.read_bits(nbits);
    if (cur) {
      std::size_t end = std::min(n, at + run);
      for (std::size_t j = at; j < end; ++j) bits.set(j);
    }
    at += run;
    cur = !cur;
  }
  return bits;
}

}  // namespace rle
}  // namespace transpwr

#endif  // TRANSPWR_LOSSLESS_RLE_H

#ifndef TRANSPWR_LOSSLESS_LOSSLESS_H
#define TRANSPWR_LOSSLESS_LOSSLESS_H

#include <cstdint>
#include <span>
#include <vector>

namespace transpwr {
namespace lossless {

/// General-purpose lossless byte compression with a 1-byte method tag.
/// Compresses with LZ77+Huffman and falls back to a raw copy whenever the
/// coded form would be larger, so callers can pipe anything through it.
/// Inputs past a fixed size threshold use the block-parallel v2 token
/// container (method tag 2); the threshold depends only on the input size,
/// so output bytes are identical for any `threads`. decompress() accepts
/// every method tag ever emitted.
std::vector<std::uint8_t> compress(std::span<const std::uint8_t> input,
                                   std::size_t threads = 0);
std::vector<std::uint8_t> decompress(std::span<const std::uint8_t> stream,
                                     std::size_t threads = 0);

}  // namespace lossless
}  // namespace transpwr

#endif  // TRANSPWR_LOSSLESS_LOSSLESS_H

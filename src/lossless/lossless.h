#ifndef TRANSPWR_LOSSLESS_LOSSLESS_H
#define TRANSPWR_LOSSLESS_LOSSLESS_H

#include <cstdint>
#include <span>
#include <vector>

namespace transpwr {
namespace lossless {

/// General-purpose lossless byte compression with a 1-byte method tag.
/// Compresses with LZ77+Huffman and falls back to a raw copy whenever the
/// coded form would be larger, so callers can pipe anything through it.
std::vector<std::uint8_t> compress(std::span<const std::uint8_t> input);
std::vector<std::uint8_t> decompress(std::span<const std::uint8_t> stream);

}  // namespace lossless
}  // namespace transpwr

#endif  // TRANSPWR_LOSSLESS_LOSSLESS_H

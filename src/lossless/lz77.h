#ifndef TRANSPWR_LOSSLESS_LZ77_H
#define TRANSPWR_LOSSLESS_LZ77_H

#include <cstdint>
#include <span>
#include <vector>

namespace transpwr {

/// DEFLATE-style LZ77 coder: hash-chain string matching over a 64 KiB
/// window, literal/length and distance alphabets entropy-coded with two
/// canonical Huffman tables. This plays the role of the GZIP stage SZ
/// applies after Huffman coding.
///
/// Container layout (all inside one bit stream):
///   u64 original size, litlen table, dist table, token bits.
namespace lz77 {

std::vector<std::uint8_t> compress(std::span<const std::uint8_t> input);
std::vector<std::uint8_t> decompress(std::span<const std::uint8_t> stream);

}  // namespace lz77
}  // namespace transpwr

#endif  // TRANSPWR_LOSSLESS_LZ77_H

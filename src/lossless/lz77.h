#ifndef TRANSPWR_LOSSLESS_LZ77_H
#define TRANSPWR_LOSSLESS_LZ77_H

#include <cstdint>
#include <span>
#include <vector>

namespace transpwr {

/// DEFLATE-style LZ77 coder: hash-chain string matching over a 64 KiB
/// window, literal/length and distance alphabets entropy-coded with two
/// canonical Huffman tables. This plays the role of the GZIP stage SZ
/// applies after Huffman coding.
///
/// v1 container layout (all inside one bit stream):
///   u64 original size, litlen table, dist table, token bits.
///
/// v2 (compress_blocked) keeps the identical token sequence but encodes it
/// in fixed-size token blocks with a substream size directory, so the
/// entropy stage runs block-parallel in both directions (the serial match
/// expansion on decode is the cheap part). Layout:
///   u64 original size, u64 token count, u32 tokens per block,
///   u32 block count, sized (litlen table + dist table bit stream),
///   u64 substream byte size per block, concatenated substreams.
namespace lz77 {

std::vector<std::uint8_t> compress(std::span<const std::uint8_t> input);
std::vector<std::uint8_t> decompress(std::span<const std::uint8_t> stream);

/// Block-parallel v2 coder of the same token sequence compress() emits.
/// Output bytes are identical for any thread count (blocks are sized by
/// token count, never thread count).
std::vector<std::uint8_t> compress_blocked(std::span<const std::uint8_t> input,
                                           std::size_t threads = 0);
std::vector<std::uint8_t> decompress_blocked(
    std::span<const std::uint8_t> stream, std::size_t threads = 0);

}  // namespace lz77
}  // namespace transpwr

#endif  // TRANSPWR_LOSSLESS_LZ77_H

#include "lossless/range_coder.h"

#include <algorithm>

namespace transpwr {
namespace {

constexpr std::uint32_t kTop = 1u << 24;
constexpr std::uint32_t kBot = 1u << 16;

}  // namespace

// --- RangeEncoder ------------------------------------------------------------

void RangeEncoder::encode(std::uint32_t cum_low, std::uint32_t freq,
                          std::uint32_t tot) {
  if (freq == 0 || tot == 0 || cum_low + freq > tot)
    throw ParamError("RangeEncoder: invalid interval");
  std::uint32_t low = low_;
  std::uint32_t range = range_;
  range /= tot;
  low += cum_low * range;
  range *= freq;
  // Subbotin carry-less renormalization.
  while ((low ^ (low + range)) < kTop ||
         (range < kBot && ((range = (0u - low) & (kBot - 1)), true))) {
    out_.push_back(static_cast<std::uint8_t>(low >> 24));
    low <<= 8;
    range <<= 8;
  }
  low_ = low;
  range_ = range;
}

std::vector<std::uint8_t> RangeEncoder::finish() {
  std::uint32_t low = low_;
  for (int i = 0; i < 4; ++i) {
    out_.push_back(static_cast<std::uint8_t>(low >> 24));
    low <<= 8;
  }
  return std::move(out_);
}

// --- RangeDecoder ------------------------------------------------------------

RangeDecoder::RangeDecoder(std::span<const std::uint8_t> bytes) : in_(bytes) {
  for (int i = 0; i < 4; ++i) code_ = (code_ << 8) | next_byte();
}

std::uint8_t RangeDecoder::next_byte() {
  return pos_ < in_.size() ? in_[pos_++] : 0;
}

std::uint32_t RangeDecoder::decode_target(std::uint32_t tot) {
  if (tot == 0) throw ParamError("RangeDecoder: zero total");
  range_ /= tot;
  std::uint32_t t =
      (code_ - low_) / range_;
  return std::min(t, tot - 1);
}

void RangeDecoder::consume(std::uint32_t cum_low, std::uint32_t freq,
                           std::uint32_t tot) {
  (void)tot;  // range_ already divided by tot in decode_target()
  std::uint32_t low = low_;
  std::uint32_t range = range_;
  low += cum_low * range;
  range *= freq;
  // A consistent encoder renormalizes at most 4 times (32 bits / 8) per
  // symbol; corrupt state can reach `range == 0` with the underflow clause
  // no longer able to raise it, which would spin here forever.
  int renorms = 0;
  while ((low ^ (low + range)) < kTop ||
         (range < kBot && ((range = (0u - low) & (kBot - 1)), true))) {
    if (++renorms > 8)
      throw StreamError("RangeDecoder: corrupt renormalization state");
    code_ = (code_ << 8) | next_byte();
    low <<= 8;
    range <<= 8;
  }
  low_ = low;
  range_ = range;
}

// --- AdaptiveModel -----------------------------------------------------------

AdaptiveModel::AdaptiveModel(std::uint32_t alphabet) {
  if (alphabet == 0 || alphabet > 4096)
    throw ParamError("AdaptiveModel: alphabet must be in [1, 4096]");
  freq_.assign(alphabet, 1);
  total_ = alphabet;
}

std::uint32_t AdaptiveModel::cum_low(std::uint32_t symbol) const {
  std::uint32_t c = 0;
  for (std::uint32_t s = 0; s < symbol; ++s) c += freq_[s];
  return c;
}

std::uint32_t AdaptiveModel::symbol_for(std::uint32_t target) const {
  std::uint32_t c = 0;
  for (std::uint32_t s = 0; s < freq_.size(); ++s) {
    c += freq_[s];
    if (target < c) return s;
  }
  throw StreamError("AdaptiveModel: target outside cumulative range");
}

void AdaptiveModel::update(std::uint32_t symbol) {
  freq_[symbol] += kIncrement;
  total_ += kIncrement;
  if (total_ >= kMaxTotal) rescale();
}

void AdaptiveModel::rescale() {
  total_ = 0;
  for (auto& f : freq_) {
    f = (f + 1) >> 1;
    total_ += f;
  }
}

void AdaptiveModel::encode(RangeEncoder& enc, std::uint32_t symbol) {
  if (symbol >= freq_.size())
    throw ParamError("AdaptiveModel: symbol out of range");
  enc.encode(cum_low(symbol), freq_[symbol], total_);
  update(symbol);
}

std::uint32_t AdaptiveModel::decode(RangeDecoder& dec) {
  std::uint32_t target = dec.decode_target(total_);
  std::uint32_t symbol = symbol_for(target);
  dec.consume(cum_low(symbol), freq_[symbol], total_);
  update(symbol);
  return symbol;
}

}  // namespace transpwr

#ifndef TRANSPWR_LOSSLESS_HUFFMAN_H
#define TRANSPWR_LOSSLESS_HUFFMAN_H

#include <cstdint>
#include <span>
#include <vector>

#include "common/bitstream.h"

namespace transpwr {

/// Canonical Huffman coder over an arbitrary u32 symbol alphabet.
///
/// This is the entropy stage SZ applies to its quantization codes (whose
/// alphabet can be 2^16+ symbols) and the backend of the LZ77 token coder.
/// Code lengths are capped at kMaxCodeLen; if the optimal tree is deeper,
/// frequencies are repeatedly halved until it fits (the standard
/// length-limiting fallback).
class HuffmanCoder {
 public:
  static constexpr unsigned kMaxCodeLen = 32;

  /// Build codes from symbol frequencies. freq.size() is the alphabet size.
  void build(std::span<const std::uint64_t> freq);

  /// Convenience: count frequencies of `symbols` over alphabet [0, alphabet).
  /// The histogram pass runs on the shared pool (per-slot counts merged
  /// exactly, so the resulting code is thread-count independent);
  /// `threads == 1` stays fully inline.
  void build_from(std::span<const std::uint32_t> symbols,
                  std::uint32_t alphabet, std::size_t threads = 0);

  /// Serialize the code-length table (canonical codes are implied).
  void write_table(BitWriter& bw) const;
  /// Rebuild decoder state from a serialized table.
  void read_table(BitReader& br);

  void encode(std::uint32_t symbol, BitWriter& bw) const;
  std::uint32_t decode(BitReader& br) const;

  /// Batched encode: equivalent to encode() per symbol, but keeps the code
  /// and length tables in registers across the whole span.
  void encode_all(std::span<const std::uint32_t> symbols, BitWriter& bw) const;
  /// Batched decode of out.size() symbols: equivalent to decode() per
  /// symbol, but runs the 12-bit fast table against word loads on a local
  /// bit cursor instead of per-symbol peek/skip bounds churn.
  void decode_all(BitReader& br, std::span<std::uint32_t> out) const;

  /// Encoded length in bits of `symbol` (0 if the symbol has no code).
  unsigned code_length(std::uint32_t symbol) const {
    return symbol < lengths_.size() ? lengths_[symbol] : 0;
  }
  std::size_t alphabet_size() const { return lengths_.size(); }

 private:
  void assign_canonical_codes();

  std::vector<std::uint8_t> lengths_;         // code length per symbol
  std::vector<std::uint32_t> codes_;          // canonical code per symbol
  // Canonical decoding state: for each length L, the first code of length L
  // and the index into sorted_symbols_ where codes of length L start.
  std::uint32_t first_code_[kMaxCodeLen + 2] = {};
  std::uint32_t first_index_[kMaxCodeLen + 2] = {};
  std::vector<std::uint32_t> sorted_symbols_;  // symbols ordered canonically

  // Single-level fast decode table: indexed by the next kFastBits of the
  // stream, resolves any code of length <= kFastBits in one lookup.
  static constexpr unsigned kFastBits = 12;
  struct FastEntry {
    std::uint32_t symbol = 0;
    std::uint8_t length = 0;  // 0 => code longer than kFastBits
  };
  std::vector<FastEntry> fast_table_;

  // Pair decode table (decode side, alphabets <= 2^16): the same 12-bit
  // probe, but when two complete codes fit in it the entry carries both, so
  // decode_all emits two symbols per table hit. Derived from fast_table_; a
  // pair entry exists iff len(code1) + len(code2) <= kFastBits, which makes
  // the emitted symbol sequence identical to the one-at-a-time path by
  // prefix-code uniqueness. Built once in read_table (before blocked decode
  // fans out across threads); empty when the alphabet is too wide.
  struct PairEntry {
    std::uint16_t sym1 = 0;
    std::uint16_t sym2 = 0;
    std::uint8_t len1 = 0;   // bits consumed by sym1
    std::uint8_t len12 = 0;  // bits consumed by sym1 + sym2 (count == 2)
    std::uint8_t count = 0;  // symbols this probe resolves: 0, 1, or 2
  };
  static constexpr std::size_t kPairAlphabetMax = std::size_t{1} << 16;
  void build_pair_table();
  std::vector<PairEntry> pair_table_;
};

}  // namespace transpwr

#endif  // TRANSPWR_LOSSLESS_HUFFMAN_H

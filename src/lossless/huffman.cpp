#include "lossless/huffman.h"

#include <algorithm>
#include <array>
#include <cstring>
#include <queue>

#include "common/decode_guard.h"
#include "common/error.h"
#include "common/parallel.h"
#include "kernels/dispatch.h"

namespace transpwr {
namespace {

constexpr std::array<std::uint8_t, 256> make_byte_reverse_table() {
  std::array<std::uint8_t, 256> t{};
  for (unsigned b = 0; b < 256; ++b) {
    unsigned r = 0;
    for (unsigned i = 0; i < 8; ++i) r |= ((b >> i) & 1u) << (7 - i);
    t[b] = static_cast<std::uint8_t>(r);
  }
  return t;
}

constexpr std::array<std::uint8_t, 256> kByteReverse = make_byte_reverse_table();

// Reverse the low `len` bits of `code` so that a single LSB-first
// BitWriter::write_bits emits the code MSB-first (as canonical decoding
// expects to consume it). Four table lookups instead of an O(len) loop:
// assign_canonical_codes re-runs this for every symbol of every slab.
std::uint32_t reverse_bits(std::uint32_t code, unsigned len) {
  std::uint32_t r = (std::uint32_t{kByteReverse[code & 0xff]} << 24) |
                    (std::uint32_t{kByteReverse[(code >> 8) & 0xff]} << 16) |
                    (std::uint32_t{kByteReverse[(code >> 16) & 0xff]} << 8) |
                    std::uint32_t{kByteReverse[(code >> 24) & 0xff]};
  return len ? r >> (32 - len) : 0;
}

}  // namespace

void HuffmanCoder::build(std::span<const std::uint64_t> freq) {
  lengths_.assign(freq.size(), 0);

  // Collect live symbols.
  std::vector<std::uint32_t> live;
  for (std::uint32_t s = 0; s < freq.size(); ++s)
    if (freq[s] > 0) live.push_back(s);

  if (live.empty()) {
    codes_.clear();
    assign_canonical_codes();
    return;
  }
  if (live.size() == 1) {
    lengths_[live[0]] = 1;
    assign_canonical_codes();
    return;
  }

  // Standard two-queue-free heap construction; retried with halved
  // frequencies if the tree exceeds kMaxCodeLen.
  std::vector<std::uint64_t> f(live.size());
  for (std::size_t i = 0; i < live.size(); ++i) f[i] = freq[live[i]];

  for (;;) {
    struct Node {
      std::uint64_t freq;
      std::int32_t left, right;  // -1 for leaves
      std::uint32_t leaf;        // index into `live` when leaf
    };
    std::vector<Node> nodes;
    nodes.reserve(2 * live.size());
    using QEntry = std::pair<std::uint64_t, std::uint32_t>;  // (freq, node)
    std::priority_queue<QEntry, std::vector<QEntry>, std::greater<>> q;
    for (std::uint32_t i = 0; i < live.size(); ++i) {
      nodes.push_back({f[i], -1, -1, i});
      q.emplace(f[i], i);
    }
    while (q.size() > 1) {
      auto [fa, a] = q.top();
      q.pop();
      auto [fb, b] = q.top();
      q.pop();
      nodes.push_back({fa + fb, static_cast<std::int32_t>(a),
                       static_cast<std::int32_t>(b), 0});
      q.emplace(fa + fb, static_cast<std::uint32_t>(nodes.size() - 1));
    }

    // Depth-first traversal to assign lengths (iterative; trees can be deep).
    unsigned max_len = 0;
    std::vector<std::pair<std::uint32_t, unsigned>> stack;
    stack.emplace_back(static_cast<std::uint32_t>(nodes.size() - 1), 0);
    std::vector<unsigned> depth(live.size(), 0);
    while (!stack.empty()) {
      auto [n, d] = stack.back();
      stack.pop_back();
      const Node& node = nodes[n];
      if (node.left < 0) {
        depth[node.leaf] = std::max(1u, d);
        max_len = std::max(max_len, std::max(1u, d));
      } else {
        stack.emplace_back(static_cast<std::uint32_t>(node.left), d + 1);
        stack.emplace_back(static_cast<std::uint32_t>(node.right), d + 1);
      }
    }

    if (max_len <= kMaxCodeLen) {
      for (std::size_t i = 0; i < live.size(); ++i)
        lengths_[live[i]] = static_cast<std::uint8_t>(depth[i]);
      break;
    }
    for (auto& v : f) v = (v + 1) >> 1;  // flatten and retry
  }

  assign_canonical_codes();
}

void HuffmanCoder::build_from(std::span<const std::uint32_t> symbols,
                              std::uint32_t alphabet, std::size_t threads) {
  ParallelOptions opts;
  opts.max_threads = threads;
  opts.grain = 1 << 16;
  const std::size_t slots = parallel_task_count(symbols.size(), opts);
  // Below ~2 histograms' worth of symbols the merge would cost more than it
  // saves; count inline.
  if (slots <= 1 || symbols.size() < 2 * std::size_t{alphabet}) {
    std::vector<std::uint64_t> freq(alphabet, 0);
    for (auto s : symbols) {
      if (s >= alphabet) throw ParamError("HuffmanCoder: symbol out of range");
      ++freq[s];
    }
    build(freq);
    return;
  }
  // Per-slot histograms merged with exact integer sums: the final counts —
  // and therefore the code — are identical for any thread count.
  std::vector<std::vector<std::uint64_t>> partial(
      slots, std::vector<std::uint64_t>(alphabet, 0));
  parallel_for_slots(
      symbols.size(),
      [&](std::size_t slot, std::size_t begin, std::size_t end) {
        std::uint64_t* f = partial[slot].data();
        for (std::size_t i = begin; i < end; ++i) {
          if (symbols[i] >= alphabet)
            throw ParamError("HuffmanCoder: symbol out of range");
          ++f[symbols[i]];
        }
      },
      opts);
  std::vector<std::uint64_t>& freq = partial[0];
  for (std::size_t s = 1; s < slots; ++s)
    for (std::uint32_t a = 0; a < alphabet; ++a) freq[a] += partial[s][a];
  build(freq);
}

void HuffmanCoder::assign_canonical_codes() {
  codes_.assign(lengths_.size(), 0);

  std::uint32_t count[kMaxCodeLen + 2] = {};
  for (auto l : lengths_)
    if (l) ++count[l];

  // first canonical code of each length
  std::uint32_t code = 0;
  std::uint32_t next_code[kMaxCodeLen + 2] = {};
  for (unsigned len = 1; len <= kMaxCodeLen; ++len) {
    code = (code + count[len - 1]) << 1;
    next_code[len] = code;
    first_code_[len] = code;
  }

  // symbols sorted by (length, symbol) — ascending symbol order falls out of
  // the scan order below.
  sorted_symbols_.clear();
  std::uint32_t index = 0;
  for (unsigned len = 1; len <= kMaxCodeLen; ++len) {
    first_index_[len] = index;
    index += count[len];
  }
  first_index_[kMaxCodeLen + 1] = index;
  sorted_symbols_.resize(index);
  std::uint32_t fill[kMaxCodeLen + 2];
  std::copy(std::begin(first_index_), std::end(first_index_),
            std::begin(fill));
  for (std::uint32_t s = 0; s < lengths_.size(); ++s) {
    unsigned len = lengths_[s];
    if (!len) continue;
    sorted_symbols_[fill[len]++] = s;
    codes_[s] = reverse_bits(next_code[len]++, len);
  }

  // Fast table: every index whose low `len` bits match a short code's
  // stream pattern resolves in one lookup.
  fast_table_.assign(std::size_t{1} << kFastBits, FastEntry{});
  for (std::uint32_t s = 0; s < lengths_.size(); ++s) {
    unsigned len = lengths_[s];
    if (!len || len > kFastBits) continue;
    std::uint32_t pattern = codes_[s];  // already in stream (reversed) order
    for (std::uint32_t hi = 0; hi < (1u << (kFastBits - len)); ++hi) {
      FastEntry& e = fast_table_[pattern | (hi << len)];
      e.symbol = s;
      e.length = static_cast<std::uint8_t>(len);
    }
  }
}

void HuffmanCoder::write_table(BitWriter& bw) const {
  // Dense code-length table with zero-run compression:
  //   u32 alphabet size, then per entry: 6-bit length; a 0 length is
  //   followed by a 16-bit run count of additional zeros to skip.
  bw.write_bits(lengths_.size(), 32);
  for (std::size_t i = 0; i < lengths_.size();) {
    unsigned len = lengths_[i];
    bw.write_bits(len, 6);
    if (len == 0) {
      std::size_t run = 1;
      while (i + run < lengths_.size() && lengths_[i + run] == 0 &&
             run < 65536)
        ++run;
      bw.write_bits(run - 1, 16);
      i += run;
    } else {
      ++i;
    }
  }
}

void HuffmanCoder::read_table(BitReader& br) {
  auto alphabet = static_cast<std::size_t>(br.read_bits(32));
  if (alphabet > (std::size_t{1} << 28))
    throw StreamError("HuffmanCoder: implausible alphabet size");
  // lengths_ (1B) + codes_ (4B) + sorted_symbols_ (4B) per symbol; reject
  // tables whose declared alphabet alone would dwarf the decode budget.
  check_decode_alloc(alphabet, 9, "HuffmanCoder");
  lengths_.assign(alphabet, 0);
  for (std::size_t i = 0; i < alphabet;) {
    unsigned len = static_cast<unsigned>(br.read_bits(6));
    if (len > kMaxCodeLen) throw StreamError("HuffmanCoder: bad code length");
    if (len == 0) {
      std::size_t run = static_cast<std::size_t>(br.read_bits(16)) + 1;
      if (i + run > alphabet) throw StreamError("HuffmanCoder: bad zero run");
      i += run;
    } else {
      lengths_[i++] = static_cast<std::uint8_t>(len);
    }
  }
  // Kraft inequality: an oversubscribed table (sum of 2^-len > 1) cannot
  // come from a real prefix code; decoding with one silently aliases
  // distinct symbols onto the same bit patterns.
  std::uint64_t kraft = 0;
  for (auto l : lengths_)
    if (l) kraft += std::uint64_t{1} << (kMaxCodeLen - l);
  if (kraft > (std::uint64_t{1} << kMaxCodeLen))
    throw StreamError("HuffmanCoder: oversubscribed code-length table");
  assign_canonical_codes();
  build_pair_table();
}

void HuffmanCoder::build_pair_table() {
  pair_table_.clear();
  if (lengths_.size() > kPairAlphabetMax) return;
  pair_table_.resize(std::size_t{1} << kFastBits);
  for (std::uint32_t idx = 0; idx < (1u << kFastBits); ++idx) {
    const FastEntry& e1 = fast_table_[idx];
    if (!e1.length) continue;
    PairEntry& p = pair_table_[idx];
    p.sym1 = static_cast<std::uint16_t>(e1.symbol);
    p.len1 = e1.length;
    p.len12 = e1.length;
    p.count = 1;
    // The second code starts at bit len1 of the probe; it is only decidable
    // from this probe alone if it fits in the remaining bits. fast_table_ at
    // the shifted index resolves exactly that: its low `e2.length` bits are
    // genuine stream bits iff e2.length <= rem.
    const unsigned rem = kFastBits - e1.length;
    const FastEntry& e2 = fast_table_[idx >> e1.length];
    if (e2.length && e2.length <= rem) {
      p.sym2 = static_cast<std::uint16_t>(e2.symbol);
      p.len12 = static_cast<std::uint8_t>(e1.length + e2.length);
      p.count = 2;
    }
  }
}

void HuffmanCoder::encode(std::uint32_t symbol, BitWriter& bw) const {
  if (symbol >= lengths_.size() || lengths_[symbol] == 0)
    throw ParamError("HuffmanCoder: encoding symbol without a code");
  bw.write_bits(codes_[symbol], lengths_[symbol]);
}

std::uint32_t HuffmanCoder::decode(BitReader& br) const {
  if (br.bits_remaining() >= kFastBits) {
    const FastEntry& e =
        fast_table_[static_cast<std::uint32_t>(br.peek_bits(kFastBits))];
    if (e.length) {
      br.skip_bits(e.length);
      return e.symbol;
    }
  }
  std::uint32_t acc = 0;
  for (unsigned len = 1; len <= kMaxCodeLen; ++len) {
    acc = (acc << 1) | static_cast<std::uint32_t>(br.read_bit());
    std::uint32_t count = first_index_[len + 1] - first_index_[len];
    if (count && acc >= first_code_[len] && acc - first_code_[len] < count)
      return sorted_symbols_[first_index_[len] + (acc - first_code_[len])];
  }
  throw StreamError("HuffmanCoder: invalid code in stream");
}

void HuffmanCoder::encode_all(std::span<const std::uint32_t> symbols,
                              BitWriter& bw) const {
  const std::uint32_t* codes = codes_.data();
  const std::uint8_t* lengths = lengths_.data();
  const std::size_t alphabet = lengths_.size();
  for (std::uint32_t s : symbols) {
    if (s >= alphabet || lengths[s] == 0)
      throw ParamError("HuffmanCoder: encoding symbol without a code");
    bw.write_bits(codes[s], lengths[s]);
  }
}

void HuffmanCoder::decode_all(BitReader& br,
                              std::span<std::uint32_t> out) const {
  const std::uint8_t* data = br.data();
  const std::size_t nbytes = br.size_bytes();
  std::size_t pos = br.bit_pos();
  // Positions from which a full 8-byte load stays in bounds; past it (or on
  // a fast-table miss) fall back to the bounds-checked scalar decode.
  const std::size_t word_safe_bits = nbytes >= 8 ? (nbytes - 8) * 8 + 1 : 0;
  const std::size_t n = out.size();

  // Native path: one probe resolves up to two symbols. The second symbol of
  // a pair entry reads the same stream bits the one-at-a-time path would
  // re-probe for, so the symbol sequence is identical by construction (on
  // corrupt streams too — both paths consume exactly the canonical code
  // lengths).
  if (!pair_table_.empty() &&
      kernels::active() == kernels::Dispatch::kNative) {
    const PairEntry* pair = pair_table_.data();
    std::size_t i = 0;
    while (i < n) {
      if (pos < word_safe_bits) {
        std::uint64_t w;
        std::memcpy(&w, data + (pos >> 3), 8);
        const PairEntry& e =
            pair[(w >> (pos & 7)) & ((1u << kFastBits) - 1)];
        if (e.count == 2 && n - i >= 2) {
          out[i] = e.sym1;
          out[i + 1] = e.sym2;
          pos += e.len12;
          i += 2;
          continue;
        }
        if (e.count) {
          out[i++] = e.sym1;
          pos += e.len1;
          continue;
        }
      }
      br.seek(pos);
      out[i++] = decode(br);
      pos = br.bit_pos();
    }
    br.seek(pos);
    return;
  }

  const FastEntry* fast = fast_table_.data();
  for (std::size_t i = 0; i < n; ++i) {
    if (pos < word_safe_bits) {
      std::uint64_t w;
      std::memcpy(&w, data + (pos >> 3), 8);
      const FastEntry& e =
          fast[(w >> (pos & 7)) & ((1u << kFastBits) - 1)];
      if (e.length) {
        out[i] = e.symbol;
        pos += e.length;
        continue;
      }
    }
    br.seek(pos);
    out[i] = decode(br);
    pos = br.bit_pos();
  }
  br.seek(pos);
}

}  // namespace transpwr

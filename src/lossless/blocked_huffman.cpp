#include "lossless/blocked_huffman.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>

#include "common/bitstream.h"
#include "common/bytestream.h"
#include "common/decode_guard.h"
#include "common/env.h"
#include "common/error.h"
#include "common/parallel.h"
#include "lossless/huffman.h"
#include "obs/obs.h"

namespace transpwr {
namespace lossless {
namespace {

constexpr std::uint32_t kMagic = 0x32484253;  // "SBH2"

std::size_t block_count_for(std::size_t count, std::size_t block) {
  return count == 0 ? 0 : (count - 1) / block + 1;
}

}  // namespace

std::size_t entropy_block_symbols() {
  static const std::size_t cached = [] {
    if (auto v = env::checked_u64(
            "TRANSPWR_ENTROPY_BLOCK",
            {.min = 4096, .max = std::size_t{1} << 24, .clamp = true}))
      return static_cast<std::size_t>(*v);
    return std::size_t{1} << 17;
  }();
  return cached;
}

std::vector<std::uint8_t> blocked_encode(std::span<const std::uint32_t> symbols,
                                         std::uint32_t alphabet,
                                         std::size_t threads,
                                         BlockedStats* stats) {
  const std::size_t block = entropy_block_symbols();
  const std::size_t nblocks = block_count_for(symbols.size(), block);

  HuffmanCoder huff;
  std::vector<std::uint8_t> table;
  {
    obs::Span hist_span("histogram", stats ? &stats->histogram_s : nullptr);
    huff.build_from(symbols, alphabet, threads);
    BitWriter table_bw;
    huff.write_table(table_bw);
    table = table_bw.take();
  }
  obs::counter_add("entropy.table_builds");

  ByteWriter out;
  {
    obs::Span enc_span("encode", stats ? &stats->encode_s : nullptr);
    std::vector<std::vector<std::uint8_t>> subs(nblocks);
    ParallelOptions opts;
    opts.max_threads = threads;
    opts.grain = 1;
    parallel_for(
        nblocks,
        [&](std::size_t begin, std::size_t end) {
          for (std::size_t b = begin; b < end; ++b) {
            BitWriter bw;
            huff.encode_all(
                symbols.subspan(b * block,
                                std::min(block, symbols.size() - b * block)),
                bw);
            subs[b] = bw.take();
          }
        },
        opts);

    out.put(kMagic);
    out.put(static_cast<std::uint64_t>(symbols.size()));
    out.put(alphabet);
    out.put(static_cast<std::uint32_t>(block));
    out.put(static_cast<std::uint32_t>(nblocks));
    out.put_sized(table);
    for (const auto& s : subs) out.put(static_cast<std::uint64_t>(s.size()));
    for (const auto& s : subs) out.put_bytes(s);
  }
  return out.take();
}

std::vector<std::uint32_t> blocked_decode(std::span<const std::uint8_t> stream,
                                          std::size_t threads) {
  ByteReader in(stream);
  if (in.get<std::uint32_t>() != kMagic)
    throw StreamError("blocked_huffman: bad magic");
  const auto count = static_cast<std::size_t>(in.get<std::uint64_t>());
  check_decode_alloc(count, sizeof(std::uint32_t), "blocked_huffman");
  const std::uint32_t alphabet = in.get<std::uint32_t>();
  const std::uint32_t block = in.get<std::uint32_t>();
  const std::uint32_t nblocks = in.get<std::uint32_t>();
  if (block == 0) throw StreamError("blocked_huffman: zero block size");
  if (nblocks != block_count_for(count, block))
    throw StreamError("blocked_huffman: block count does not match directory");

  auto table_bytes = in.get_sized();
  BitReader table_br(table_bytes);
  HuffmanCoder huff;
  huff.read_table(table_br);
  if (huff.alphabet_size() != alphabet)
    throw StreamError("blocked_huffman: table alphabet mismatch");

  // Directory: per-block substream byte sizes. Every entry is re-checked
  // against the bytes actually present before any block allocation, so a
  // corrupt directory cannot point substreams past the payload.
  std::vector<std::size_t> offsets(std::size_t{nblocks} + 1, 0);
  for (std::uint32_t b = 0; b < nblocks; ++b) {
    const auto sz = in.get<std::uint64_t>();
    if (sz > stream.size())
      throw StreamError("blocked_huffman: substream size exceeds stream");
    offsets[b + 1] = offsets[b] + static_cast<std::size_t>(sz);
    if (offsets[b + 1] < offsets[b])
      throw StreamError("blocked_huffman: substream directory overflows");
  }
  if (offsets[nblocks] > in.remaining())
    throw StreamError("blocked_huffman: truncated substreams");
  auto payload = in.get_bytes(offsets[nblocks]);

  std::vector<std::uint32_t> out(count);
  ParallelOptions opts;
  opts.max_threads = threads;
  opts.grain = 1;
  parallel_for(
      nblocks,
      [&](std::size_t begin, std::size_t end) {
        for (std::size_t b = begin; b < end; ++b) {
          BitReader br(payload.subspan(offsets[b], offsets[b + 1] - offsets[b]));
          const std::size_t first = b * std::size_t{block};
          huff.decode_all(
              br, std::span<std::uint32_t>(out).subspan(
                      first, std::min<std::size_t>(block, count - first)));
        }
      },
      opts);
  return out;
}

}  // namespace lossless
}  // namespace transpwr

#ifndef TRANSPWR_LOSSLESS_BLOCKED_HUFFMAN_H
#define TRANSPWR_LOSSLESS_BLOCKED_HUFFMAN_H

#include <cstdint>
#include <span>
#include <vector>

namespace transpwr {
namespace lossless {

/// Block-parallel canonical-Huffman coding of a u32 symbol stream — the v2
/// entropy container behind the SZ / interpolation quantization codes and
/// the LZ77 token stage.
///
/// The stream is cut into fixed-size symbol blocks (block size derived from
/// the element count, never the thread count, so the output bytes are
/// identical for any parallelism), one canonical table is built from
/// per-thread histograms merged exactly, each block is encoded into an
/// independent byte-aligned substream, and a substream size directory lets
/// the decoder fan the blocks back out in parallel.
///
/// Container layout (little-endian, see docs/formats.md):
///   u32 magic "SBH2", u64 symbol count, u32 alphabet, u32 block size,
///   u32 block count, sized code-length table, u64 substream byte size per
///   block, concatenated substreams.

/// Optional per-stage timing filled by blocked_encode.
struct BlockedStats {
  double histogram_s = 0;  ///< frequency pass + canonical table build
  double encode_s = 0;     ///< parallel block encode + concatenation
};

/// Symbols per block: `TRANSPWR_ENTROPY_BLOCK` (env var, clamped to
/// [4096, 2^24]) when set, else 1 << 17. Read once per process.
std::size_t entropy_block_symbols();

/// Encode `symbols` over alphabet [0, alphabet). `threads == 0` uses
/// default_threads(); any thread count produces identical bytes.
std::vector<std::uint8_t> blocked_encode(std::span<const std::uint32_t> symbols,
                                         std::uint32_t alphabet,
                                         std::size_t threads = 0,
                                         BlockedStats* stats = nullptr);

/// Decode a blocked_encode stream back to the symbol vector.
std::vector<std::uint32_t> blocked_decode(std::span<const std::uint8_t> stream,
                                          std::size_t threads = 0);

}  // namespace lossless
}  // namespace transpwr

#endif  // TRANSPWR_LOSSLESS_BLOCKED_HUFFMAN_H

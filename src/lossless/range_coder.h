#ifndef TRANSPWR_LOSSLESS_RANGE_CODER_H
#define TRANSPWR_LOSSLESS_RANGE_CODER_H

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "common/error.h"

namespace transpwr {

/// Byte-oriented range coder (Subbotin style) with adaptive frequency
/// models — the entropy stage FPZIP uses in place of static Huffman.
/// Carry-less 32-bit renormalization, one output byte at a time.
class RangeEncoder {
 public:
  /// Encode a symbol given its cumulative range [cum_low, cum_low+freq)
  /// out of total `tot`. Caller supplies the model.
  void encode(std::uint32_t cum_low, std::uint32_t freq, std::uint32_t tot);

  /// Flush internal state; returns the coded bytes. Use once.
  std::vector<std::uint8_t> finish();

 private:
  std::uint32_t low_ = 0;
  std::uint32_t range_ = 0xffffffffu;
  std::vector<std::uint8_t> out_;
};

class RangeDecoder {
 public:
  explicit RangeDecoder(std::span<const std::uint8_t> bytes);

  /// Current scaled cumulative value in [0, tot); caller binary-searches
  /// its model for the symbol whose cumulative interval contains it, then
  /// must call consume() with that interval.
  std::uint32_t decode_target(std::uint32_t tot);
  void consume(std::uint32_t cum_low, std::uint32_t freq, std::uint32_t tot);

 private:
  std::uint8_t next_byte();

  std::span<const std::uint8_t> in_;
  std::size_t pos_ = 0;
  std::uint32_t low_ = 0;
  std::uint32_t range_ = 0xffffffffu;
  std::uint32_t code_ = 0;
};

/// Adaptive frequency model over a small alphabet (<= 256 symbols) with
/// periodic halving; O(n) update, fine for the magnitude-class alphabets
/// the codecs use.
class AdaptiveModel {
 public:
  explicit AdaptiveModel(std::uint32_t alphabet);

  std::uint32_t alphabet() const {
    return static_cast<std::uint32_t>(freq_.size());
  }
  std::uint32_t total() const { return total_; }

  /// Cumulative frequency below `symbol`.
  std::uint32_t cum_low(std::uint32_t symbol) const;
  std::uint32_t freq(std::uint32_t symbol) const { return freq_[symbol]; }

  /// Symbol whose cumulative interval contains `target`.
  std::uint32_t symbol_for(std::uint32_t target) const;

  /// Bump a symbol's frequency (call after encode/decode of it).
  void update(std::uint32_t symbol);

  void encode(RangeEncoder& enc, std::uint32_t symbol);
  std::uint32_t decode(RangeDecoder& dec);

 private:
  void rescale();

  std::vector<std::uint32_t> freq_;
  std::uint32_t total_ = 0;
  static constexpr std::uint32_t kMaxTotal = 1u << 16;
  static constexpr std::uint32_t kIncrement = 32;
};

}  // namespace transpwr

#endif  // TRANSPWR_LOSSLESS_RANGE_CODER_H

#include "lossless/lz77.h"

#include <algorithm>
#include <cstring>

#include "common/bitstream.h"
#include "common/bytestream.h"
#include "common/decode_guard.h"
#include "common/error.h"
#include "common/parallel.h"
#include "lossless/blocked_huffman.h"
#include "lossless/huffman.h"

namespace transpwr {
namespace lz77 {
namespace {

constexpr std::size_t kWindow = 1u << 16;
constexpr std::size_t kMinMatch = 4;
constexpr std::size_t kMaxMatch = 1024;
constexpr unsigned kHashBits = 16;
constexpr int kMaxChain = 48;

// Length symbols: 256 = end-of-stream, 257+k encodes match length class k.
// Classes follow an Elias-gamma-like split: class k covers lengths
// [kMinMatch + base(k), kMinMatch + base(k+1)) with `extra(k)` raw bits.
constexpr unsigned kNumLenClasses = 24;
constexpr std::uint32_t kEos = 256;
constexpr std::uint32_t kLenBase = 257;
constexpr std::uint32_t kLitLenAlphabet = kLenBase + kNumLenClasses;

unsigned len_class_extra(unsigned k) { return k < 4 ? 0 : (k - 4) / 2 + 1; }

std::uint32_t len_class_base(unsigned k) {
  std::uint32_t b = 0;
  for (unsigned i = 0; i < k; ++i) b += 1u << len_class_extra(i);
  return b;
}

// Distance classes: class k covers [dist_base(k), dist_base(k+1)) with
// k/2-ish extra bits (deflate-style).
constexpr unsigned kNumDistClasses = 32;

unsigned dist_class_extra(unsigned k) { return k < 2 ? 0 : (k - 2) / 2; }

std::uint32_t dist_class_base(unsigned k) {
  std::uint32_t b = 1;
  for (unsigned i = 0; i < k; ++i) b += 1u << dist_class_extra(i);
  return b;
}

struct ClassTables {
  std::uint32_t len_base[kNumLenClasses + 1];
  std::uint32_t dist_base[kNumDistClasses + 1];
  ClassTables() {
    for (unsigned k = 0; k <= kNumLenClasses; ++k)
      len_base[k] = len_class_base(k);
    for (unsigned k = 0; k <= kNumDistClasses; ++k)
      dist_base[k] = dist_class_base(k);
  }
  unsigned len_class(std::uint32_t len_off) const {
    unsigned k =
        static_cast<unsigned>(std::upper_bound(len_base, len_base +
                                                             kNumLenClasses,
                                               len_off) -
                              len_base) -
        1;
    return k;
  }
  unsigned dist_class(std::uint32_t dist) const {
    unsigned k = static_cast<unsigned>(
                     std::upper_bound(dist_base, dist_base + kNumDistClasses,
                                      dist) -
                     dist_base) -
                 1;
    return k;
  }
};

const ClassTables& tables() {
  static const ClassTables t;
  return t;
}

struct Token {
  std::uint32_t literal_or_len;  // literal byte, or match length offset
  std::uint32_t dist;            // 0 => literal
};

std::uint32_t hash4(const std::uint8_t* p) {
  std::uint32_t v;
  std::memcpy(&v, p, 4);
  return (v * 2654435761u) >> (32 - kHashBits);
}

/// Hash-chain greedy tokenization — shared verbatim by the v1 and blocked
/// v2 containers, so both emit the same token sequence.
std::vector<Token> tokenize(std::span<const std::uint8_t> input) {
  const std::size_t n = input.size();
  std::vector<Token> toks;
  toks.reserve(n / 3 + 16);

  std::vector<std::int64_t> head(std::size_t{1} << kHashBits, -1);
  std::vector<std::int64_t> prev(n, -1);

  std::size_t i = 0;
  while (i < n) {
    std::size_t best_len = 0;
    std::size_t best_dist = 0;
    if (i + kMinMatch <= n) {
      std::uint32_t h = hash4(input.data() + i);
      std::int64_t cand = head[h];
      int chain = kMaxChain;
      const std::size_t limit = std::min(kMaxMatch, n - i);
      while (cand >= 0 && chain-- > 0 &&
             i - static_cast<std::size_t>(cand) <= kWindow) {
        const std::uint8_t* a = input.data() + i;
        const std::uint8_t* b = input.data() + cand;
        std::size_t l = 0;
        while (l < limit && a[l] == b[l]) ++l;
        if (l > best_len) {
          best_len = l;
          best_dist = i - static_cast<std::size_t>(cand);
          if (l >= limit) break;
        }
        cand = prev[static_cast<std::size_t>(cand)];
      }
    }

    if (best_len >= kMinMatch) {
      toks.push_back({static_cast<std::uint32_t>(best_len - kMinMatch),
                      static_cast<std::uint32_t>(best_dist)});
      // Insert hash entries for every covered position (bounded work).
      std::size_t end = std::min(i + best_len, n >= 3 ? n - 3 : 0);
      for (std::size_t j = i; j < end; ++j) {
        std::uint32_t h = hash4(input.data() + j);
        prev[j] = head[h];
        head[h] = static_cast<std::int64_t>(j);
      }
      i += best_len;
    } else {
      toks.push_back({input[i], 0});
      if (i + 4 <= n) {
        std::uint32_t h = hash4(input.data() + i);
        prev[i] = head[h];
        head[h] = static_cast<std::int64_t>(i);
      }
      ++i;
    }
  }
  return toks;
}

/// Token frequency pass shared by both containers. `with_eos` accounts for
/// the v1 end-of-stream marker.
void count_tokens(const std::vector<Token>& toks, bool with_eos,
                  std::vector<std::uint64_t>& litlen_freq,
                  std::vector<std::uint64_t>& dist_freq) {
  const ClassTables& ct = tables();
  litlen_freq.assign(kLitLenAlphabet, 0);
  dist_freq.assign(kNumDistClasses, 0);
  for (const Token& t : toks) {
    if (t.dist == 0) {
      ++litlen_freq[t.literal_or_len];
    } else {
      ++litlen_freq[kLenBase + ct.len_class(t.literal_or_len)];
      ++dist_freq[ct.dist_class(t.dist)];
    }
  }
  if (with_eos) ++litlen_freq[kEos];
}

void encode_token(const Token& t, const HuffmanCoder& litlen,
                  const HuffmanCoder& dist, BitWriter& bw) {
  const ClassTables& ct = tables();
  if (t.dist == 0) {
    litlen.encode(t.literal_or_len, bw);
  } else {
    unsigned lk = ct.len_class(t.literal_or_len);
    litlen.encode(kLenBase + lk, bw);
    bw.write_bits(t.literal_or_len - ct.len_base[lk], len_class_extra(lk));
    unsigned dk = ct.dist_class(t.dist);
    dist.encode(dk, bw);
    bw.write_bits(t.dist - ct.dist_base[dk], dist_class_extra(dk));
  }
}

/// Decode one token (v2 path: no EOS symbol in the alphabet stream).
Token decode_token(BitReader& br, const HuffmanCoder& litlen,
                   const HuffmanCoder& dist) {
  const ClassTables& ct = tables();
  std::uint32_t sym = litlen.decode(br);
  if (sym < 256) return {sym, 0};
  if (sym == kEos) throw StreamError("lz77: unexpected EOS in blocked stream");
  unsigned lk = sym - kLenBase;
  if (lk >= kNumLenClasses) throw StreamError("lz77: bad length class");
  std::uint32_t len_off =
      ct.len_base[lk] +
      static_cast<std::uint32_t>(br.read_bits(len_class_extra(lk)));
  unsigned dk = dist.decode(br);
  if (dk >= kNumDistClasses) throw StreamError("lz77: bad distance class");
  std::uint32_t d = ct.dist_base[dk] +
                    static_cast<std::uint32_t>(
                        br.read_bits(dist_class_extra(dk)));
  return {len_off, d};
}

}  // namespace

std::vector<std::uint8_t> compress(std::span<const std::uint8_t> input) {
  const std::size_t n = input.size();
  std::vector<Token> toks = tokenize(input);

  std::vector<std::uint64_t> litlen_freq, dist_freq;
  count_tokens(toks, /*with_eos=*/true, litlen_freq, dist_freq);

  HuffmanCoder litlen, dist;
  litlen.build(litlen_freq);
  dist.build(dist_freq);

  BitWriter bw;
  bw.write_bits(n, 64);
  litlen.write_table(bw);
  dist.write_table(bw);
  for (const Token& t : toks) encode_token(t, litlen, dist, bw);
  litlen.encode(kEos, bw);
  return bw.take();
}

std::vector<std::uint8_t> decompress(std::span<const std::uint8_t> stream) {
  const ClassTables& ct = tables();
  BitReader br(stream);
  auto n = static_cast<std::size_t>(br.read_bits(64));
  // The declared size both drives reserve() and bounds the match expansion
  // below, so a corrupt header must not be allowed to claim exabytes.
  check_decode_alloc(n, 1, "lz77");
  HuffmanCoder litlen, dist;
  litlen.read_table(br);
  dist.read_table(br);

  std::vector<std::uint8_t> out;
  out.reserve(n);
  for (;;) {
    std::uint32_t sym = litlen.decode(br);
    if (sym == kEos) break;
    if (sym < 256) {
      if (out.size() >= n) throw StreamError("lz77: output exceeds header size");
      out.push_back(static_cast<std::uint8_t>(sym));
      continue;
    }
    unsigned lk = sym - kLenBase;
    if (lk >= kNumLenClasses) throw StreamError("lz77: bad length class");
    std::size_t len = kMinMatch + ct.len_base[lk] +
                      static_cast<std::size_t>(
                          br.read_bits(len_class_extra(lk)));
    if (len > n - out.size())
      throw StreamError("lz77: output exceeds header size");
    unsigned dk = dist.decode(br);
    if (dk >= kNumDistClasses) throw StreamError("lz77: bad distance class");
    std::size_t d = ct.dist_base[dk] +
                    static_cast<std::size_t>(
                        br.read_bits(dist_class_extra(dk)));
    if (d == 0 || d > out.size()) throw StreamError("lz77: bad distance");
    std::size_t src = out.size() - d;
    for (std::size_t j = 0; j < len; ++j) out.push_back(out[src + j]);
  }
  if (out.size() != n) throw StreamError("lz77: size mismatch");
  return out;
}

std::vector<std::uint8_t> compress_blocked(std::span<const std::uint8_t> input,
                                           std::size_t threads) {
  const std::size_t n = input.size();
  std::vector<Token> toks = tokenize(input);

  std::vector<std::uint64_t> litlen_freq, dist_freq;
  count_tokens(toks, /*with_eos=*/false, litlen_freq, dist_freq);

  HuffmanCoder litlen, dist;
  litlen.build(litlen_freq);
  dist.build(dist_freq);

  BitWriter tables_bw;
  litlen.write_table(tables_bw);
  dist.write_table(tables_bw);
  std::vector<std::uint8_t> table_bytes = tables_bw.take();

  const std::size_t block = lossless::entropy_block_symbols();
  const std::size_t nblocks = toks.empty() ? 0 : (toks.size() - 1) / block + 1;
  std::vector<std::vector<std::uint8_t>> subs(nblocks);
  ParallelOptions opts;
  opts.max_threads = threads;
  opts.grain = 1;
  parallel_for(
      nblocks,
      [&](std::size_t begin, std::size_t end) {
        for (std::size_t b = begin; b < end; ++b) {
          BitWriter bw;
          const std::size_t first = b * block;
          const std::size_t last = std::min(first + block, toks.size());
          for (std::size_t t = first; t < last; ++t)
            encode_token(toks[t], litlen, dist, bw);
          subs[b] = bw.take();
        }
      },
      opts);

  ByteWriter out;
  out.put(static_cast<std::uint64_t>(n));
  out.put(static_cast<std::uint64_t>(toks.size()));
  out.put(static_cast<std::uint32_t>(block));
  out.put(static_cast<std::uint32_t>(nblocks));
  out.put_sized(table_bytes);
  for (const auto& s : subs) out.put(static_cast<std::uint64_t>(s.size()));
  for (const auto& s : subs) out.put_bytes(s);
  return out.take();
}

std::vector<std::uint8_t> decompress_blocked(
    std::span<const std::uint8_t> stream, std::size_t threads) {
  ByteReader in(stream);
  const auto n = static_cast<std::size_t>(in.get<std::uint64_t>());
  check_decode_alloc(n, 1, "lz77");
  const auto ntoks = static_cast<std::size_t>(in.get<std::uint64_t>());
  // Every token reconstructs at least one output byte, and costs at least
  // one bit in its substream; both sides of that bound are enforced.
  if (ntoks > n) throw StreamError("lz77: more tokens than output bytes");
  check_decode_alloc(ntoks, sizeof(Token), "lz77");
  const std::uint32_t block = in.get<std::uint32_t>();
  const std::uint32_t nblocks = in.get<std::uint32_t>();
  if (block == 0) throw StreamError("lz77: zero token block size");
  if (nblocks != (ntoks == 0 ? 0 : (ntoks - 1) / block + 1))
    throw StreamError("lz77: block count does not match token count");

  auto table_bytes = in.get_sized();
  BitReader tables_br(table_bytes);
  HuffmanCoder litlen, dist;
  litlen.read_table(tables_br);
  dist.read_table(tables_br);

  std::vector<std::size_t> offsets(std::size_t{nblocks} + 1, 0);
  for (std::uint32_t b = 0; b < nblocks; ++b) {
    const auto sz = in.get<std::uint64_t>();
    if (sz > stream.size())
      throw StreamError("lz77: substream size exceeds stream");
    offsets[b + 1] = offsets[b] + static_cast<std::size_t>(sz);
    if (offsets[b + 1] < offsets[b])
      throw StreamError("lz77: substream directory overflows");
  }
  if (offsets[nblocks] > in.remaining())
    throw StreamError("lz77: truncated substreams");
  auto payload = in.get_bytes(offsets[nblocks]);

  // Phase 1 (parallel): entropy-decode each block back to tokens.
  std::vector<Token> toks(ntoks);
  ParallelOptions opts;
  opts.max_threads = threads;
  opts.grain = 1;
  parallel_for(
      nblocks,
      [&](std::size_t begin, std::size_t end) {
        for (std::size_t b = begin; b < end; ++b) {
          BitReader br(
              payload.subspan(offsets[b], offsets[b + 1] - offsets[b]));
          const std::size_t first = b * std::size_t{block};
          const std::size_t last =
              std::min<std::size_t>(first + block, ntoks);
          for (std::size_t t = first; t < last; ++t)
            toks[t] = decode_token(br, litlen, dist);
        }
      },
      opts);

  // Phase 2 (serial): expand matches — back-references cross block
  // boundaries, but this is plain memory traffic.
  std::vector<std::uint8_t> out;
  out.reserve(n);
  for (const Token& t : toks) {
    if (t.dist == 0) {
      if (out.size() >= n)
        throw StreamError("lz77: output exceeds header size");
      out.push_back(static_cast<std::uint8_t>(t.literal_or_len));
      continue;
    }
    std::size_t len = kMinMatch + t.literal_or_len;
    if (len > n - out.size())
      throw StreamError("lz77: output exceeds header size");
    std::size_t d = t.dist;
    if (d == 0 || d > out.size()) throw StreamError("lz77: bad distance");
    std::size_t src = out.size() - d;
    for (std::size_t j = 0; j < len; ++j) out.push_back(out[src + j]);
  }
  if (out.size() != n) throw StreamError("lz77: size mismatch");
  return out;
}

}  // namespace lz77
}  // namespace transpwr

#include "lossless/lz77.h"

#include <algorithm>
#include <cstring>

#include "common/bitstream.h"
#include "common/decode_guard.h"
#include "common/error.h"
#include "lossless/huffman.h"

namespace transpwr {
namespace lz77 {
namespace {

constexpr std::size_t kWindow = 1u << 16;
constexpr std::size_t kMinMatch = 4;
constexpr std::size_t kMaxMatch = 1024;
constexpr unsigned kHashBits = 16;
constexpr int kMaxChain = 48;

// Length symbols: 256 = end-of-stream, 257+k encodes match length class k.
// Classes follow an Elias-gamma-like split: class k covers lengths
// [kMinMatch + base(k), kMinMatch + base(k+1)) with `extra(k)` raw bits.
constexpr unsigned kNumLenClasses = 24;
constexpr std::uint32_t kEos = 256;
constexpr std::uint32_t kLenBase = 257;
constexpr std::uint32_t kLitLenAlphabet = kLenBase + kNumLenClasses;

unsigned len_class_extra(unsigned k) { return k < 4 ? 0 : (k - 4) / 2 + 1; }

std::uint32_t len_class_base(unsigned k) {
  std::uint32_t b = 0;
  for (unsigned i = 0; i < k; ++i) b += 1u << len_class_extra(i);
  return b;
}

// Distance classes: class k covers [dist_base(k), dist_base(k+1)) with
// k/2-ish extra bits (deflate-style).
constexpr unsigned kNumDistClasses = 32;

unsigned dist_class_extra(unsigned k) { return k < 2 ? 0 : (k - 2) / 2; }

std::uint32_t dist_class_base(unsigned k) {
  std::uint32_t b = 1;
  for (unsigned i = 0; i < k; ++i) b += 1u << dist_class_extra(i);
  return b;
}

struct ClassTables {
  std::uint32_t len_base[kNumLenClasses + 1];
  std::uint32_t dist_base[kNumDistClasses + 1];
  ClassTables() {
    for (unsigned k = 0; k <= kNumLenClasses; ++k)
      len_base[k] = len_class_base(k);
    for (unsigned k = 0; k <= kNumDistClasses; ++k)
      dist_base[k] = dist_class_base(k);
  }
  unsigned len_class(std::uint32_t len_off) const {
    unsigned k =
        static_cast<unsigned>(std::upper_bound(len_base, len_base +
                                                             kNumLenClasses,
                                               len_off) -
                              len_base) -
        1;
    return k;
  }
  unsigned dist_class(std::uint32_t dist) const {
    unsigned k = static_cast<unsigned>(
                     std::upper_bound(dist_base, dist_base + kNumDistClasses,
                                      dist) -
                     dist_base) -
                 1;
    return k;
  }
};

const ClassTables& tables() {
  static const ClassTables t;
  return t;
}

struct Token {
  std::uint32_t literal_or_len;  // literal byte, or match length offset
  std::uint32_t dist;            // 0 => literal
};

std::uint32_t hash4(const std::uint8_t* p) {
  std::uint32_t v;
  std::memcpy(&v, p, 4);
  return (v * 2654435761u) >> (32 - kHashBits);
}

}  // namespace

std::vector<std::uint8_t> compress(std::span<const std::uint8_t> input) {
  const ClassTables& ct = tables();
  const std::size_t n = input.size();
  std::vector<Token> toks;
  toks.reserve(n / 3 + 16);

  std::vector<std::int64_t> head(std::size_t{1} << kHashBits, -1);
  std::vector<std::int64_t> prev(n, -1);

  std::size_t i = 0;
  while (i < n) {
    std::size_t best_len = 0;
    std::size_t best_dist = 0;
    if (i + kMinMatch <= n) {
      std::uint32_t h = hash4(input.data() + i);
      std::int64_t cand = head[h];
      int chain = kMaxChain;
      const std::size_t limit = std::min(kMaxMatch, n - i);
      while (cand >= 0 && chain-- > 0 &&
             i - static_cast<std::size_t>(cand) <= kWindow) {
        const std::uint8_t* a = input.data() + i;
        const std::uint8_t* b = input.data() + cand;
        std::size_t l = 0;
        while (l < limit && a[l] == b[l]) ++l;
        if (l > best_len) {
          best_len = l;
          best_dist = i - static_cast<std::size_t>(cand);
          if (l >= limit) break;
        }
        cand = prev[static_cast<std::size_t>(cand)];
      }
    }

    if (best_len >= kMinMatch) {
      toks.push_back({static_cast<std::uint32_t>(best_len - kMinMatch),
                      static_cast<std::uint32_t>(best_dist)});
      // Insert hash entries for every covered position (bounded work).
      std::size_t end = std::min(i + best_len, n >= 3 ? n - 3 : 0);
      for (std::size_t j = i; j < end; ++j) {
        std::uint32_t h = hash4(input.data() + j);
        prev[j] = head[h];
        head[h] = static_cast<std::int64_t>(j);
      }
      i += best_len;
    } else {
      toks.push_back({input[i], 0});
      if (i + 4 <= n) {
        std::uint32_t h = hash4(input.data() + i);
        prev[i] = head[h];
        head[h] = static_cast<std::int64_t>(i);
      }
      ++i;
    }
  }

  // Frequency pass.
  std::vector<std::uint64_t> litlen_freq(kLitLenAlphabet, 0);
  std::vector<std::uint64_t> dist_freq(kNumDistClasses, 0);
  for (const Token& t : toks) {
    if (t.dist == 0) {
      ++litlen_freq[t.literal_or_len];
    } else {
      ++litlen_freq[kLenBase + ct.len_class(t.literal_or_len)];
      ++dist_freq[ct.dist_class(t.dist)];
    }
  }
  ++litlen_freq[kEos];

  HuffmanCoder litlen, dist;
  litlen.build(litlen_freq);
  dist.build(dist_freq);

  BitWriter bw;
  bw.write_bits(n, 64);
  litlen.write_table(bw);
  dist.write_table(bw);
  for (const Token& t : toks) {
    if (t.dist == 0) {
      litlen.encode(t.literal_or_len, bw);
    } else {
      unsigned lk = ct.len_class(t.literal_or_len);
      litlen.encode(kLenBase + lk, bw);
      bw.write_bits(t.literal_or_len - ct.len_base[lk], len_class_extra(lk));
      unsigned dk = ct.dist_class(t.dist);
      dist.encode(dk, bw);
      bw.write_bits(t.dist - ct.dist_base[dk], dist_class_extra(dk));
    }
  }
  litlen.encode(kEos, bw);
  return bw.take();
}

std::vector<std::uint8_t> decompress(std::span<const std::uint8_t> stream) {
  const ClassTables& ct = tables();
  BitReader br(stream);
  auto n = static_cast<std::size_t>(br.read_bits(64));
  // The declared size both drives reserve() and bounds the match expansion
  // below, so a corrupt header must not be allowed to claim exabytes.
  check_decode_alloc(n, 1, "lz77");
  HuffmanCoder litlen, dist;
  litlen.read_table(br);
  dist.read_table(br);

  std::vector<std::uint8_t> out;
  out.reserve(n);
  for (;;) {
    std::uint32_t sym = litlen.decode(br);
    if (sym == kEos) break;
    if (sym < 256) {
      if (out.size() >= n) throw StreamError("lz77: output exceeds header size");
      out.push_back(static_cast<std::uint8_t>(sym));
      continue;
    }
    unsigned lk = sym - kLenBase;
    if (lk >= kNumLenClasses) throw StreamError("lz77: bad length class");
    std::size_t len = kMinMatch + ct.len_base[lk] +
                      static_cast<std::size_t>(
                          br.read_bits(len_class_extra(lk)));
    if (len > n - out.size())
      throw StreamError("lz77: output exceeds header size");
    unsigned dk = dist.decode(br);
    if (dk >= kNumDistClasses) throw StreamError("lz77: bad distance class");
    std::size_t d = ct.dist_base[dk] +
                    static_cast<std::size_t>(
                        br.read_bits(dist_class_extra(dk)));
    if (d == 0 || d > out.size()) throw StreamError("lz77: bad distance");
    std::size_t src = out.size() - d;
    for (std::size_t j = 0; j < len; ++j) out.push_back(out[src + j]);
  }
  if (out.size() != n) throw StreamError("lz77: size mismatch");
  return out;
}

}  // namespace lz77
}  // namespace transpwr

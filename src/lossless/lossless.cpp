#include "lossless/lossless.h"

#include "common/error.h"
#include "lossless/lz77.h"

namespace transpwr {
namespace lossless {
namespace {
constexpr std::uint8_t kMethodRaw = 0;
constexpr std::uint8_t kMethodLz77 = 1;
}  // namespace

std::vector<std::uint8_t> compress(std::span<const std::uint8_t> input) {
  std::vector<std::uint8_t> coded = lz77::compress(input);
  std::vector<std::uint8_t> out;
  if (coded.size() < input.size()) {
    out.reserve(coded.size() + 1);
    out.push_back(kMethodLz77);
    out.insert(out.end(), coded.begin(), coded.end());
  } else {
    out.reserve(input.size() + 1);
    out.push_back(kMethodRaw);
    out.insert(out.end(), input.begin(), input.end());
  }
  return out;
}

std::vector<std::uint8_t> decompress(std::span<const std::uint8_t> stream) {
  if (stream.empty()) throw StreamError("lossless: empty stream");
  std::uint8_t method = stream[0];
  auto body = stream.subspan(1);
  switch (method) {
    case kMethodRaw:
      return {body.begin(), body.end()};
    case kMethodLz77:
      return lz77::decompress(body);
    default:
      throw StreamError("lossless: unknown method tag");
  }
}

}  // namespace lossless
}  // namespace transpwr

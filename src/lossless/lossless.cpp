#include "lossless/lossless.h"

#include "common/error.h"
#include "lossless/lz77.h"

namespace transpwr {
namespace lossless {
namespace {
constexpr std::uint8_t kMethodRaw = 0;
constexpr std::uint8_t kMethodLz77 = 1;
constexpr std::uint8_t kMethodLz77Blocked = 2;
// Inputs at least this large use the blocked token container; the extra
// directory bytes are noise there and the entropy stage parallelizes. A
// size-derived cutoff keeps output independent of the thread count.
constexpr std::size_t kBlockedThreshold = std::size_t{1} << 16;
}  // namespace

std::vector<std::uint8_t> compress(std::span<const std::uint8_t> input,
                                   std::size_t threads) {
  const bool blocked = input.size() >= kBlockedThreshold;
  std::vector<std::uint8_t> coded = blocked
                                        ? lz77::compress_blocked(input, threads)
                                        : lz77::compress(input);
  std::vector<std::uint8_t> out;
  if (coded.size() < input.size()) {
    out.reserve(coded.size() + 1);
    out.push_back(blocked ? kMethodLz77Blocked : kMethodLz77);
    out.insert(out.end(), coded.begin(), coded.end());
  } else {
    out.reserve(input.size() + 1);
    out.push_back(kMethodRaw);
    out.insert(out.end(), input.begin(), input.end());
  }
  return out;
}

std::vector<std::uint8_t> decompress(std::span<const std::uint8_t> stream,
                                     std::size_t threads) {
  if (stream.empty()) throw StreamError("lossless: empty stream");
  std::uint8_t method = stream[0];
  auto body = stream.subspan(1);
  switch (method) {
    case kMethodRaw:
      return {body.begin(), body.end()};
    case kMethodLz77:
      return lz77::decompress(body);
    case kMethodLz77Blocked:
      return lz77::decompress_blocked(body, threads);
    default:
      throw StreamError("lossless: unknown method tag");
  }
}

}  // namespace lossless
}  // namespace transpwr
